//! Bit-parallel truth tables.
//!
//! A [`TruthTable`] stores the complete function table of a Boolean function
//! over `n` variables as a packed bit vector (one bit per input minterm,
//! 64 minterms per word). Truth tables are the ground truth for every
//! equivalence check in this workspace: MIG rewrites, RRAM program
//! compilation, and the BDD/AIG baselines are all validated against them.
//!
//! Tables support up to [`MAX_VARS`] variables; beyond that exhaustive
//! representation is impractical and callers should fall back to sampled
//! simulation (see [`crate::sim`]).

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum number of variables an exhaustive [`TruthTable`] may have.
///
/// 24 variables require 2 MiB per table, which keeps even the property-test
/// workloads cheap while covering every circuit we check exhaustively.
pub const MAX_VARS: usize = 24;

/// A complete truth table over a fixed number of Boolean variables.
///
/// Bit `m` of the table is the function value for the input minterm `m`,
/// where variable `i` contributes bit `i` of `m` (variable 0 is the least
/// significant).
///
/// # Example
///
/// ```
/// use rms_logic::tt::TruthTable;
///
/// let a = TruthTable::var(3, 0);
/// let b = TruthTable::var(3, 1);
/// let c = TruthTable::var(3, 2);
/// let maj = TruthTable::maj(&a, &b, &c);
/// assert_eq!(maj.count_ones(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

/// Bit patterns of the first six variables within a single 64-bit word.
const VAR_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Number of words needed for an `n`-variable table.
    fn word_count(num_vars: usize) -> usize {
        if num_vars <= 6 {
            1
        } else {
            1 << (num_vars - 6)
        }
    }

    /// Mask of the valid bits in the (single) word of a small table.
    fn tail_mask(num_vars: usize) -> u64 {
        if num_vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1 << num_vars)) - 1
        }
    }

    fn assert_vars(num_vars: usize) {
        assert!(
            num_vars <= MAX_VARS,
            "truth table limited to {MAX_VARS} variables, got {num_vars}"
        );
    }

    /// The constant-false function of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn zero(num_vars: usize) -> Self {
        Self::assert_vars(num_vars);
        TruthTable {
            num_vars,
            words: vec![0; Self::word_count(num_vars)],
        }
    }

    /// The constant-true function of `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn one(num_vars: usize) -> Self {
        Self::assert_vars(num_vars);
        let mut words = vec![u64::MAX; Self::word_count(num_vars)];
        words[0] = Self::tail_mask(num_vars);
        TruthTable { num_vars, words }
    }

    /// The projection function of variable `var` among `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > MAX_VARS`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        Self::assert_vars(num_vars);
        assert!(var < num_vars, "variable {var} out of range 0..{num_vars}");
        let mut t = Self::zero(num_vars);
        if var < 6 {
            let pattern = VAR_PATTERNS[var] & Self::tail_mask(num_vars);
            for w in &mut t.words {
                *w = pattern;
            }
        } else {
            let period = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / period) & 1 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// The argument to `f` is the minterm index; bit `i` is the value of
    /// variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        Self::assert_vars(num_vars);
        let mut t = Self::zero(num_vars);
        for m in 0..(1u64 << num_vars) {
            if f(m) {
                t.set_bit(m);
            }
        }
        t
    }

    /// Builds a table from the low `2^num_vars` bits of `bits`.
    ///
    /// Only valid for `num_vars <= 6`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6`.
    pub fn from_bits(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 6, "from_bits supports at most 6 variables");
        TruthTable {
            num_vars,
            words: vec![bits & Self::tail_mask(num_vars)],
        }
    }

    /// Number of variables of this table.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of minterms (bits) in this table.
    pub fn num_bits(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// Value of the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    pub fn bit(&self, m: u64) -> bool {
        assert!(m < self.num_bits(), "minterm {m} out of range");
        (self.words[(m >> 6) as usize] >> (m & 63)) & 1 == 1
    }

    /// Sets the function value on minterm `m` to true.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    pub fn set_bit(&mut self, m: u64) {
        assert!(m < self.num_bits(), "minterm {m} out of range");
        self.words[(m >> 6) as usize] |= 1u64 << (m & 63);
    }

    /// Clears the function value on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^num_vars`.
    pub fn clear_bit(&mut self, m: u64) {
        assert!(m < self.num_bits(), "minterm {m} out of range");
        self.words[(m >> 6) as usize] &= !(1u64 << (m & 63));
    }

    /// Number of minterms on which the function is true.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant true.
    pub fn is_one(&self) -> bool {
        *self == Self::one(self.num_vars)
    }

    /// The underlying packed words (bit `m & 63` of word `m >> 6`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(
            self.num_vars, other.num_vars,
            "truth table variable counts differ"
        );
        TruthTable {
            num_vars: self.num_vars,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Three-input majority `M(a, b, c) = ab + ac + bc`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn maj(a: &Self, b: &Self, c: &Self) -> Self {
        assert_eq!(a.num_vars, b.num_vars);
        assert_eq!(a.num_vars, c.num_vars);
        TruthTable {
            num_vars: a.num_vars,
            words: a
                .words
                .iter()
                .zip(&b.words)
                .zip(&c.words)
                .map(|((&x, &y), &z)| (x & y) | (x & z) | (y & z))
                .collect(),
        }
    }

    /// If-then-else `s ? t : e`.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn ite(s: &Self, t: &Self, e: &Self) -> Self {
        assert_eq!(s.num_vars, t.num_vars);
        assert_eq!(s.num_vars, e.num_vars);
        TruthTable {
            num_vars: s.num_vars,
            words: s
                .words
                .iter()
                .zip(&t.words)
                .zip(&e.words)
                .map(|((&x, &y), &z)| (x & y) | (!x & z))
                .collect(),
        }
    }

    /// The positive cofactor with respect to variable `var` (still over the
    /// same variable set; the cofactored variable becomes irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut t = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let p = VAR_PATTERNS[var];
            for w in &mut t.words {
                let hi = *w & p;
                *w = hi | (hi >> shift);
            }
            if self.num_vars < 6 {
                t.words[0] &= Self::tail_mask(self.num_vars);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = t.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..period {
                    t.words[i + j] = self.words[i + period + j];
                }
                for j in 0..period {
                    t.words[i + period + j] = self.words[i + period + j];
                }
                i += 2 * period;
            }
        }
        t
    }

    /// The negative cofactor with respect to variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut t = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let p = !VAR_PATTERNS[var];
            for w in &mut t.words {
                let lo = *w & p;
                *w = lo | (lo << shift);
            }
            if self.num_vars < 6 {
                t.words[0] &= Self::tail_mask(self.num_vars);
            }
        } else {
            let period = 1usize << (var - 6);
            let n = t.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..period {
                    t.words[i + period + j] = self.words[i + j];
                }
                i += 2 * period;
            }
        }
        t
    }

    /// Whether the function depends on variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Re-expresses this table over `new_num_vars >= num_vars` variables;
    /// the added variables are irrelevant.
    ///
    /// # Panics
    ///
    /// Panics if `new_num_vars < num_vars` or `new_num_vars > MAX_VARS`.
    pub fn extend_to(&self, new_num_vars: usize) -> Self {
        assert!(new_num_vars >= self.num_vars);
        Self::assert_vars(new_num_vars);
        if new_num_vars == self.num_vars {
            return self.clone();
        }
        let mut t = Self::zero(new_num_vars);
        if self.num_vars < 6 {
            // Replicate the partial word across each 64-bit word.
            let chunk = 1u64 << self.num_vars;
            let mut word = self.words[0];
            let mut width = chunk;
            while width < 64 {
                word |= word << width;
                width *= 2;
            }
            let cap = Self::tail_mask(new_num_vars.min(6));
            for w in &mut t.words {
                *w = word;
            }
            if new_num_vars < 6 {
                t.words[0] = word & cap;
            }
        } else {
            let n = self.words.len();
            for (i, w) in t.words.iter_mut().enumerate() {
                *w = self.words[i % n];
            }
        }
        t
    }
}

impl BitAnd for &TruthTable {
    type Output = TruthTable;
    fn bitand(self, rhs: Self) -> TruthTable {
        self.zip(rhs, |a, b| a & b)
    }
}

impl BitOr for &TruthTable {
    type Output = TruthTable;
    fn bitor(self, rhs: Self) -> TruthTable {
        self.zip(rhs, |a, b| a | b)
    }
}

impl BitXor for &TruthTable {
    type Output = TruthTable;
    fn bitxor(self, rhs: Self) -> TruthTable {
        self.zip(rhs, |a, b| a ^ b)
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut t = TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().map(|&w| !w).collect(),
        };
        if self.num_vars < 6 {
            t.words[0] &= TruthTable::tail_mask(self.num_vars);
        }
        t
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, ", self.num_vars)?;
        if self.num_vars <= 6 {
            write!(f, "{:0width$b})", self.words[0], width = 1 << self.num_vars)
        } else {
            write!(f, "{} words)", self.words.len())
        }
    }
}

impl fmt::Display for TruthTable {
    /// Hexadecimal spelling, most significant minterm first (ABC style).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.num_vars <= 2 {
            return write!(f, "{:x}", self.words[0]);
        }
        for w in self.words.iter().rev() {
            if self.num_vars < 6 {
                let digits = (1usize << self.num_vars) / 4;
                write!(f, "{:0width$x}", w, width = digits)?;
            } else {
                write!(f, "{w:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_patterns_small() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(a.words()[0], 0b1010);
        assert_eq!(b.words()[0], 0b1100);
    }

    #[test]
    fn var_patterns_large() {
        let t = TruthTable::var(8, 7);
        for m in 0..256u64 {
            assert_eq!(t.bit(m), (m >> 7) & 1 == 1, "minterm {m}");
        }
    }

    #[test]
    fn constants() {
        assert!(TruthTable::zero(4).is_zero());
        assert!(TruthTable::one(4).is_one());
        assert_eq!(TruthTable::one(3).count_ones(), 8);
        assert_eq!(TruthTable::one(9).count_ones(), 512);
    }

    #[test]
    fn ops_match_semantics() {
        for n in [2usize, 3, 5, 7, 8] {
            let a = TruthTable::var(n, 0);
            let b = TruthTable::var(n, n - 1);
            let and = &a & &b;
            let or = &a | &b;
            let xor = &a ^ &b;
            let na = !&a;
            for m in 0..(1u64 << n) {
                let x = m & 1 == 1;
                let y = (m >> (n - 1)) & 1 == 1;
                assert_eq!(and.bit(m), x && y);
                assert_eq!(or.bit(m), x || y);
                assert_eq!(xor.bit(m), x ^ y);
                assert_eq!(na.bit(m), !x);
            }
        }
    }

    #[test]
    fn maj_is_majority() {
        for n in [3usize, 7] {
            let a = TruthTable::var(n, 0);
            let b = TruthTable::var(n, 1);
            let c = TruthTable::var(n, 2);
            let m = TruthTable::maj(&a, &b, &c);
            for x in 0..(1u64 << n) {
                let bits = (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1);
                assert_eq!(m.bit(x), bits >= 2);
            }
        }
    }

    #[test]
    fn ite_matches() {
        let n = 3;
        let s = TruthTable::var(n, 0);
        let t = TruthTable::var(n, 1);
        let e = TruthTable::var(n, 2);
        let ite = TruthTable::ite(&s, &t, &e);
        for m in 0..8u64 {
            let sv = m & 1 == 1;
            let tv = (m >> 1) & 1 == 1;
            let ev = (m >> 2) & 1 == 1;
            assert_eq!(ite.bit(m), if sv { tv } else { ev });
        }
    }

    #[test]
    fn cofactors_small_and_large() {
        for n in [3usize, 7, 8] {
            for v in 0..n {
                let f = TruthTable::from_fn(n, |m| (m.count_ones() % 3) == 1);
                let c1 = f.cofactor1(v);
                let c0 = f.cofactor0(v);
                for m in 0..(1u64 << n) {
                    let m1 = m | (1 << v);
                    let m0 = m & !(1 << v);
                    assert_eq!(c1.bit(m), f.bit(m1), "c1 n={n} v={v} m={m}");
                    assert_eq!(c0.bit(m), f.bit(m0), "c0 n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn support_detection() {
        let n = 5;
        let a = TruthTable::var(n, 1);
        let b = TruthTable::var(n, 3);
        let f = &a ^ &b;
        assert_eq!(f.support(), vec![1, 3]);
        assert!(!f.depends_on(0));
        assert!(f.depends_on(3));
    }

    #[test]
    fn extend_preserves_function() {
        let f = TruthTable::from_fn(3, |m| m.count_ones() == 2);
        for target in [3usize, 5, 6, 7, 9] {
            let g = f.extend_to(target);
            for m in 0..(1u64 << target) {
                assert_eq!(g.bit(m), f.bit(m & 7), "target {target} m {m}");
            }
        }
    }

    #[test]
    fn from_fn_round_trip() {
        let f = TruthTable::from_fn(4, |m| m % 3 == 0);
        for m in 0..16u64 {
            assert_eq!(f.bit(m), m % 3 == 0);
        }
        assert_eq!(
            f.count_ones(),
            (0..16u64).filter(|m| m % 3 == 0).count() as u64
        );
    }

    #[test]
    fn display_hex() {
        let a = TruthTable::var(3, 0);
        assert_eq!(a.to_string(), "aa");
        let c = TruthTable::var(3, 2);
        assert_eq!(c.to_string(), "f0");
    }

    #[test]
    #[should_panic(expected = "variable counts differ")]
    fn mismatched_vars_panic() {
        let _ = &TruthTable::zero(3) & &TruthTable::zero(4);
    }
}
