//! The paper's two RRAM realizations of a majority gate (Sec. III-A).
//!
//! [`imp_majority_gate`] is the ten-step, six-device IMP-based sequence of
//! Fig. 3; [`maj_majority_gate`] is the three-step, four-device realization
//! exploiting the intrinsic resistive majority. Both are emitted as
//! [`Program`]s so the interpreter can verify them exhaustively — the unit
//! tests here replay the derivation in the paper step by step.

use crate::isa::{MicroOp, Operand, Program, RegId};

/// Device roles of the IMP-based gate in Fig. 3.
const X: RegId = RegId(0);
const Y: RegId = RegId(1);
const Z: RegId = RegId(2);
const A: RegId = RegId(3);
const B: RegId = RegId(4);
const C: RegId = RegId(5);

/// Builds the IMP-based majority gate of Fig. 3: six devices
/// (`X, Y, Z, A, B, C`), ten sequential steps, output in `A`.
///
/// The step sequence (with the intermediate values each step establishes):
///
/// ```text
/// 01: X=x, Y=y, Z=z, A=0, B=0, C=0
/// 02: A ← X IMP A          A = x̄
/// 03: B ← Y IMP B          B = ȳ
/// 04: Y ← A IMP Y          Y = x + y
/// 05: B ← X IMP B          B = x̄ + ȳ
/// 06: C ← Y IMP C          C = (x + y)‾
/// 07: C ← Z IMP C          C = (xz + yz)‾
/// 08: A = 0
/// 09: A ← B IMP A          A = x·y
/// 10: A ← C IMP A          A = xy + xz + yz
/// ```
pub fn imp_majority_gate() -> Program {
    let reg = |r: RegId| Operand::Reg(r);
    Program {
        num_inputs: 3,
        num_regs: 6,
        steps: vec![
            vec![
                MicroOp::Load {
                    dst: X,
                    src: Operand::Input(0),
                },
                MicroOp::Load {
                    dst: Y,
                    src: Operand::Input(1),
                },
                MicroOp::Load {
                    dst: Z,
                    src: Operand::Input(2),
                },
                MicroOp::False { dst: A },
                MicroOp::False { dst: B },
                MicroOp::False { dst: C },
            ],
            vec![MicroOp::Imp { p: reg(X), q: A }],
            vec![MicroOp::Imp { p: reg(Y), q: B }],
            vec![MicroOp::Imp { p: reg(A), q: Y }],
            vec![MicroOp::Imp { p: reg(X), q: B }],
            vec![MicroOp::Imp { p: reg(Y), q: C }],
            vec![MicroOp::Imp { p: reg(Z), q: C }],
            vec![MicroOp::False { dst: A }],
            vec![MicroOp::Imp { p: reg(B), q: A }],
            vec![MicroOp::Imp { p: reg(C), q: A }],
        ],
        outputs: vec![("maj".into(), A)],
        model_rrams: 6,
    }
}

/// Builds the MAJ-based majority gate of Sec. III-A2: four devices
/// (`X, Y, Z, A`), three sequential steps, output in `Z`.
///
/// ```text
/// 01: X=x, Y=y, Z=z, A=0
/// 02: A ← M(1, ¬y, 0) = ȳ          (V_SET / V_COND on A)
/// 03: Z ← M(x, ¬ȳ, z) = M(x, y, z) (P_Z = x, Q_Z = ȳ)
/// ```
pub fn maj_majority_gate() -> Program {
    Program {
        num_inputs: 3,
        num_regs: 4,
        steps: vec![
            vec![
                MicroOp::Load {
                    dst: X,
                    src: Operand::Input(0),
                },
                MicroOp::Load {
                    dst: Y,
                    src: Operand::Input(1),
                },
                MicroOp::Load {
                    dst: Z,
                    src: Operand::Input(2),
                },
                MicroOp::False { dst: A },
            ],
            vec![MicroOp::Maj {
                p: Operand::Const(true),
                q: Operand::Reg(Y),
                r: A,
            }],
            vec![MicroOp::Maj {
                p: Operand::Reg(X),
                q: Operand::Reg(A),
                r: Z,
            }],
        ],
        outputs: vec![("maj".into(), Z)],
        model_rrams: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn is_maj(m: u64) -> bool {
        m.count_ones() >= 2
    }

    #[test]
    fn imp_gate_computes_majority_exhaustively() {
        let prog = imp_majority_gate();
        assert_eq!(prog.num_steps(), 10, "Fig. 3 requires ten steps");
        assert_eq!(prog.num_regs, 6, "Fig. 3 requires six RRAMs");
        let tts = Machine::truth_tables(&prog).unwrap();
        for m in 0..8u64 {
            assert_eq!(tts[0].bit(m), is_maj(m), "minterm {m}");
        }
    }

    #[test]
    fn maj_gate_computes_majority_exhaustively() {
        let prog = maj_majority_gate();
        assert_eq!(prog.num_steps(), 3, "MAJ realization requires three steps");
        assert_eq!(prog.num_regs, 4, "MAJ realization requires four RRAMs");
        let tts = Machine::truth_tables(&prog).unwrap();
        for m in 0..8u64 {
            assert_eq!(tts[0].bit(m), is_maj(m), "minterm {m}");
        }
    }

    #[test]
    fn imp_gate_intermediate_values_follow_the_paper() {
        // Replay the derivation for x=1, y=0, z=1 by truncating the program.
        let check = |steps: usize, reg: RegId, expect: bool, what: &str| {
            let mut prog = imp_majority_gate();
            prog.steps.truncate(steps);
            prog.outputs = vec![("probe".into(), reg)];
            let outs = Machine::run_bools(&prog, &[true, false, true]).unwrap();
            assert_eq!(outs[0], expect, "{what}");
        };
        check(2, RegId(3), false, "02: A = x̄ = 0");
        check(3, RegId(4), true, "03: B = ȳ = 1");
        check(4, RegId(1), true, "04: Y = x + y = 1");
        check(5, RegId(4), true, "05: B = x̄ + ȳ = 1");
        check(6, RegId(5), false, "06: C = !(x + y) = 0");
        check(7, RegId(5), false, "07: C = !(xz + yz) = 0");
        check(9, RegId(3), false, "09: A = x·y = 0");
        check(10, RegId(3), true, "10: A = maj = 1");
    }

    #[test]
    fn both_realizations_agree() {
        let imp = Machine::truth_tables(&imp_majority_gate()).unwrap();
        let maj = Machine::truth_tables(&maj_majority_gate()).unwrap();
        assert_eq!(imp, maj);
    }

    #[test]
    fn inputs_x_and_z_survive_imp_gate() {
        // The paper notes two of the six devices keep their initial values.
        for m in 0..8u64 {
            let bits = [m & 1 == 1, m & 2 != 0, m & 4 != 0];
            let mut prog = imp_majority_gate();
            prog.outputs = vec![("x".into(), RegId(0)), ("z".into(), RegId(2))];
            let outs = Machine::run_bools(&prog, &bits).unwrap();
            assert_eq!(outs[0], bits[0], "X preserved at {m}");
            assert_eq!(outs[1], bits[2], "Z preserved at {m}");
        }
    }
}
