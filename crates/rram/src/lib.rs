//! Behavioural RRAM in-memory computing machine.
//!
//! This crate is the hardware substrate of the reproduction: it models the
//! resistive devices of the paper's Figs. 1–2, the two majority-gate
//! realizations of Sec. III-A, and executes whole synthesized circuits.
//!
//! - [`device`] — single-device next-state model (`R' = M(P, ¬Q, R)`) and
//!   the two-device IMP gate,
//! - [`isa`] — the micro-op ISA (`FALSE`, `LOAD`, `IMP`, `MAJ`) and
//!   step-parallel [`isa::Program`]s,
//! - [`gates`] — the paper's 10-step IMP-based and 3-step MAJ-based
//!   majority gates as ready-made programs,
//! - [`mod@compile`] — the level-by-level MIG compiler of Sec. III-B with
//!   device reuse, and
//! - [`machine`] — a cycle-accurate, bit-parallel interpreter.
//!
//! # Example
//!
//! ```
//! use rms_core::{Mig, Realization};
//! use rms_rram::{compile::compile, machine::Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mig = Mig::with_inputs("and", 2);
//! let (a, b) = (mig.input(0), mig.input(1));
//! let g = mig.and(a, b);
//! mig.add_output("f", g);
//! let circuit = compile(&mig, Realization::Maj);
//! let outs = Machine::run_bools(&circuit.program, &[true, true])?;
//! assert!(outs[0]);
//! # Ok(())
//! # }
//! ```

//!
//! This crate is the hardware layer of the workspace; see
//! `ARCHITECTURE.md` at the repository root for how the cost model the
//! compilers realize composes with the optimization layer.

pub mod compile;
pub mod device;
pub mod gates;
pub mod isa;
pub mod machine;
pub mod plim;

pub use compile::{compile, CompiledCircuit};
pub use device::{Drive, ImpGate, Rram};
pub use isa::{MicroOp, Operand, Program, ProgramError, RegId};
pub use machine::{Machine, RunStats};
pub use plim::{compile_plim, PlimCircuit};
