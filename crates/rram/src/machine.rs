//! Cycle-accurate, bit-parallel interpreter for RRAM programs.
//!
//! The machine evaluates a [`Program`] 64 input assignments at a time
//! (one bit lane per assignment). Within a step all operand reads observe
//! the pre-step device states, matching the simultaneous execution
//! semantics of the ISA.

use crate::isa::{MicroOp, Operand, Program, ProgramError, RegId};

/// Execution statistics of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Sequential steps executed (the paper's `S`).
    pub steps: u64,
    /// Distinct devices actually touched by the program.
    pub devices_touched: u64,
}

/// The in-memory computing machine.
///
/// # Example
///
/// ```
/// use rms_rram::gates::maj_majority_gate;
/// use rms_rram::machine::Machine;
///
/// let program = maj_majority_gate();
/// let outs = Machine::run_bools(&program, &[true, false, true]).expect("valid program");
/// assert!(outs[0]); // M(1,0,1) = 1
/// ```
#[derive(Debug, Default)]
pub struct Machine {
    regs: Vec<u64>,
    touched: Vec<bool>,
}

impl Machine {
    /// Creates a machine with no devices; [`Machine::run_words`] sizes it.
    pub fn new() -> Self {
        Machine::default()
    }

    fn value(&self, op: Operand, inputs: &[u64]) -> u64 {
        match op {
            Operand::Const(false) => 0,
            Operand::Const(true) => u64::MAX,
            Operand::Input(i) => inputs[i],
            Operand::Reg(RegId(r)) => self.regs[r as usize],
        }
    }

    /// Runs `program` on 64 parallel assignments (`inputs[i]` holds one bit
    /// per lane for input `i`); returns one word per output.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program fails validation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != program.num_inputs`.
    pub fn run_words(
        &mut self,
        program: &Program,
        inputs: &[u64],
    ) -> Result<Vec<u64>, ProgramError> {
        assert_eq!(inputs.len(), program.num_inputs, "input count mismatch");
        program.validate()?;
        self.regs.clear();
        self.regs.resize(program.num_regs, 0);
        self.touched.clear();
        self.touched.resize(program.num_regs, false);
        let mut writes: Vec<(usize, u64)> = Vec::new();
        for step in &program.steps {
            writes.clear();
            for op in step {
                let (dst, val) = match *op {
                    MicroOp::False { dst } => (dst, 0),
                    MicroOp::Load { dst, src } => (dst, self.value(src, inputs)),
                    MicroOp::Imp { p, q } => {
                        let pv = self.value(p, inputs);
                        let qv = self.regs[q.0 as usize];
                        (q, !pv | qv)
                    }
                    MicroOp::Maj { p, q, r } => {
                        let pv = self.value(p, inputs);
                        let qv = !self.value(q, inputs);
                        let rv = self.regs[r.0 as usize];
                        (r, (pv & qv) | (pv & rv) | (qv & rv))
                    }
                };
                writes.push((dst.0 as usize, val));
            }
            for &(dst, val) in &writes {
                self.regs[dst] = val;
                self.touched[dst] = true;
            }
        }
        Ok(program
            .outputs
            .iter()
            .map(|(_, r)| self.regs[r.0 as usize])
            .collect())
    }

    /// Runs `program` on a single boolean assignment.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program fails validation.
    pub fn run_bools(program: &Program, inputs: &[bool]) -> Result<Vec<bool>, ProgramError> {
        let words: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        let mut m = Machine::new();
        let outs = m.run_words(program, &words)?;
        Ok(outs.into_iter().map(|w| w & 1 == 1).collect())
    }

    /// Statistics of the most recent run.
    pub fn stats(&self, program: &Program) -> RunStats {
        RunStats {
            steps: program.num_steps(),
            devices_touched: self.touched.iter().filter(|&&t| t).count() as u64,
        }
    }

    /// Exhaustive truth tables of a program's outputs (one
    /// [`rms_logic::TruthTable`] per output).
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than [`rms_logic::tt::MAX_VARS`]
    /// inputs.
    pub fn truth_tables(program: &Program) -> Result<Vec<rms_logic::TruthTable>, ProgramError> {
        use rms_logic::tt::{TruthTable, MAX_VARS};
        let n = program.num_inputs;
        assert!(n <= MAX_VARS, "too many inputs for exhaustive tables");
        let mut tts: Vec<TruthTable> = program
            .outputs
            .iter()
            .map(|_| TruthTable::zero(n))
            .collect();
        let total = 1u64 << n;
        let mut machine = Machine::new();
        let mut base = 0u64;
        while base < total {
            let chunk = 64.min(total - base);
            let inputs: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for b in 0..chunk {
                        if ((base + b) >> i) & 1 == 1 {
                            w |= 1 << b;
                        }
                    }
                    w
                })
                .collect();
            let outs = machine.run_words(program, &inputs)?;
            for (t, &w) in tts.iter_mut().zip(&outs) {
                for b in 0..chunk {
                    if (w >> b) & 1 == 1 {
                        t.set_bit(base + b);
                    }
                }
            }
            base += chunk;
        }
        Ok(tts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Step;

    fn imp_program() -> Program {
        Program {
            num_inputs: 2,
            num_regs: 2,
            steps: vec![
                vec![
                    MicroOp::Load {
                        dst: RegId(0),
                        src: Operand::Input(0),
                    },
                    MicroOp::Load {
                        dst: RegId(1),
                        src: Operand::Input(1),
                    },
                ],
                vec![MicroOp::Imp {
                    p: Operand::Reg(RegId(0)),
                    q: RegId(1),
                }],
            ],
            outputs: vec![("f".into(), RegId(1))],
            model_rrams: 2,
        }
    }

    #[test]
    fn imp_semantics() {
        for (p, q, expect) in [
            (false, false, true),
            (false, true, true),
            (true, false, false),
            (true, true, true),
        ] {
            let outs = Machine::run_bools(&imp_program(), &[p, q]).unwrap();
            assert_eq!(outs[0], expect, "p={p} q={q}");
        }
    }

    #[test]
    fn maj_op_semantics() {
        let prog = Program {
            num_inputs: 3,
            num_regs: 1,
            steps: vec![
                vec![MicroOp::Load {
                    dst: RegId(0),
                    src: Operand::Input(2),
                }],
                vec![MicroOp::Maj {
                    p: Operand::Input(0),
                    q: Operand::Input(1),
                    r: RegId(0),
                }],
            ],
            outputs: vec![("f".into(), RegId(0))],
            model_rrams: 1,
        };
        for m in 0..8u32 {
            let (p, q, r) = (m & 1 == 1, m & 2 != 0, m & 4 != 0);
            let outs = Machine::run_bools(&prog, &[p, q, r]).unwrap();
            let expect = [p, !q, r].iter().filter(|&&b| b).count() >= 2;
            assert_eq!(outs[0], expect, "{m}");
        }
    }

    #[test]
    fn reads_observe_pre_step_state() {
        // Swap-like step: both ops read old values.
        let prog = Program {
            num_inputs: 2,
            num_regs: 2,
            steps: vec![
                vec![
                    MicroOp::Load {
                        dst: RegId(0),
                        src: Operand::Input(0),
                    },
                    MicroOp::Load {
                        dst: RegId(1),
                        src: Operand::Input(1),
                    },
                ],
                vec![
                    MicroOp::Load {
                        dst: RegId(0),
                        src: Operand::Reg(RegId(1)),
                    },
                    MicroOp::Load {
                        dst: RegId(1),
                        src: Operand::Reg(RegId(0)),
                    },
                ],
            ],
            outputs: vec![("a".into(), RegId(0)), ("b".into(), RegId(1))],
            model_rrams: 2,
        };
        let outs = Machine::run_bools(&prog, &[true, false]).unwrap();
        assert_eq!(outs, vec![false, true], "values must swap");
    }

    #[test]
    fn invalid_program_is_rejected() {
        let mut p = imp_program();
        p.steps.push(vec![MicroOp::False { dst: RegId(5) }] as Step);
        assert!(Machine::run_bools(&p, &[false, false]).is_err());
    }

    #[test]
    fn truth_tables_of_imp() {
        let tts = Machine::truth_tables(&imp_program()).unwrap();
        // f = !p | q with p = input 0 (minterm bit 0), q = input 1:
        // minterms 00,10,01,11 -> 1,0,1,1 -> 0b1101.
        assert_eq!(tts[0].words()[0] & 0xF, 0b1101);
    }

    #[test]
    fn stats_count_touched_devices() {
        let mut m = Machine::new();
        let prog = imp_program();
        m.run_words(&prog, &[0, 0]).unwrap();
        assert_eq!(
            m.stats(&prog),
            RunStats {
                steps: 2,
                devices_touched: 2
            }
        );
    }
}
