//! The micro-operation ISA of the RRAM in-memory machine.
//!
//! A [`Program`] is a sequence of [`Step`]s; all micro-ops inside one step
//! execute simultaneously (they drive disjoint devices, and all operand
//! reads observe the pre-step state). The step count of a program is the
//! paper's `S` metric; the machine additionally accounts devices for the
//! `R` metric (see [`crate::machine`]).

use std::fmt;

/// Index of an RRAM device (a "register" of the in-memory machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A value source for a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A constant logic level supplied by a voltage driver.
    Const(bool),
    /// Primary input `i`, supplied by the input drivers.
    Input(usize),
    /// The current state of a device.
    Reg(RegId),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(false) => write!(f, "0"),
            Operand::Const(true) => write!(f, "1"),
            Operand::Input(i) => write!(f, "x{i}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// One micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// FALSE: drive `V_CLEAR`, forcing the device to 0.
    False {
        /// Target device.
        dst: RegId,
    },
    /// Load a value into a device (`V_SET`/`V_CLEAR` chosen by the driver).
    Load {
        /// Target device.
        dst: RegId,
        /// Value source.
        src: Operand,
    },
    /// Material implication `q ← p IMP q = p̄ + q` (Fig. 1).
    Imp {
        /// The `P` device/driver of the IMP gate.
        p: Operand,
        /// The `Q` device; read and written.
        q: RegId,
    },
    /// Intrinsic majority `r ← M(p, ¬q, r)` (Fig. 2): terminal `P` driven
    /// with `p`, terminal `Q` with `q`.
    Maj {
        /// Level applied to the top terminal.
        p: Operand,
        /// Level applied to the bottom terminal (acts inverted).
        q: Operand,
        /// The device switched in place.
        r: RegId,
    },
}

impl MicroOp {
    /// The device this op writes.
    pub fn dst(&self) -> RegId {
        match *self {
            MicroOp::False { dst } | MicroOp::Load { dst, .. } => dst,
            MicroOp::Imp { q, .. } => q,
            MicroOp::Maj { r, .. } => r,
        }
    }

    /// The registers this op reads.
    pub fn reads(&self) -> Vec<RegId> {
        let mut v = Vec::new();
        let mut add = |o: &Operand| {
            if let Operand::Reg(r) = o {
                v.push(*r);
            }
        };
        match self {
            MicroOp::False { .. } => {}
            MicroOp::Load { src, .. } => add(src),
            MicroOp::Imp { p, q } => {
                add(p);
                v.push(*q);
            }
            MicroOp::Maj { p, q, r } => {
                add(p);
                add(q);
                v.push(*r);
            }
        }
        v
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroOp::False { dst } => write!(f, "{dst} = 0"),
            MicroOp::Load { dst, src } => write!(f, "{dst} <- {src}"),
            MicroOp::Imp { p, q } => write!(f, "{q} <- {p} IMP {q}"),
            MicroOp::Maj { p, q, r } => write!(f, "{r} <- MAJ({p}, !{q}, {r})"),
        }
    }
}

/// A group of micro-ops executing simultaneously in one time step.
pub type Step = Vec<MicroOp>;

/// A complete in-memory computing program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Number of primary inputs the program expects.
    pub num_inputs: usize,
    /// Number of devices (registers) the program addresses.
    pub num_regs: usize,
    /// The sequential steps.
    pub steps: Vec<Step>,
    /// Output name and the device holding the value after the last step.
    pub outputs: Vec<(String, RegId)>,
    /// The paper's `R` metric: the modelled per-level device footprint
    /// `max_i (K·N_i + C_i)` (see [`mod@crate::compile`]); `0` when the program
    /// was hand-written rather than compiled.
    pub model_rrams: u64,
}

/// A structural defect found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Two micro-ops in the same step write the same device.
    WriteConflict {
        /// Index of the offending step.
        step: usize,
        /// The doubly-written device.
        reg: RegId,
    },
    /// A micro-op addresses a device `>= num_regs`.
    RegOutOfRange {
        /// Index of the offending step.
        step: usize,
        /// The out-of-range device.
        reg: RegId,
    },
    /// An input operand index is `>= num_inputs`.
    InputOutOfRange {
        /// Index of the offending step.
        step: usize,
        /// The out-of-range input.
        input: usize,
    },
    /// An output names a device `>= num_regs`.
    OutputOutOfRange {
        /// The out-of-range device.
        reg: RegId,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::WriteConflict { step, reg } => {
                write!(f, "step {step}: device {reg} written twice")
            }
            ProgramError::RegOutOfRange { step, reg } => {
                write!(f, "step {step}: device {reg} out of range")
            }
            ProgramError::InputOutOfRange { step, input } => {
                write!(f, "step {step}: input x{input} out of range")
            }
            ProgramError::OutputOutOfRange { reg } => {
                write!(f, "output device {reg} out of range")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Number of sequential steps (the paper's `S` metric for compiled
    /// programs).
    pub fn num_steps(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found: intra-step write
    /// conflicts, device indices out of range, or input indices out of
    /// range.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (si, step) in self.steps.iter().enumerate() {
            let mut written: Vec<u32> = Vec::with_capacity(step.len());
            for op in step {
                let d = op.dst();
                if d.0 as usize >= self.num_regs {
                    return Err(ProgramError::RegOutOfRange { step: si, reg: d });
                }
                if written.contains(&d.0) {
                    return Err(ProgramError::WriteConflict { step: si, reg: d });
                }
                written.push(d.0);
                for r in op.reads() {
                    if r.0 as usize >= self.num_regs {
                        return Err(ProgramError::RegOutOfRange { step: si, reg: r });
                    }
                }
                let check_input = |o: &Operand| -> Option<usize> {
                    match o {
                        Operand::Input(i) if *i >= self.num_inputs => Some(*i),
                        _ => None,
                    }
                };
                let bad = match op {
                    MicroOp::Load { src, .. } => check_input(src),
                    MicroOp::Imp { p, .. } => check_input(p),
                    MicroOp::Maj { p, q, .. } => check_input(p).or(check_input(q)),
                    MicroOp::False { .. } => None,
                };
                if let Some(input) = bad {
                    return Err(ProgramError::InputOutOfRange { step: si, input });
                }
            }
        }
        for (_, r) in &self.outputs {
            if r.0 as usize >= self.num_regs {
                return Err(ProgramError::OutputOutOfRange { reg: *r });
            }
        }
        Ok(())
    }

    /// Pretty-prints the program as a step-numbered listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "; {} inputs, {} devices, {} steps",
            self.num_inputs,
            self.num_regs,
            self.steps.len()
        );
        for (i, step) in self.steps.iter().enumerate() {
            let ops: Vec<String> = step.iter().map(|o| o.to_string()).collect();
            let _ = writeln!(s, "{:03}: {}", i + 1, ops.join(" ; "));
        }
        for (name, r) in &self.outputs {
            let _ = writeln!(s, "out {name} = {r}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            num_inputs: 2,
            num_regs: 2,
            steps: vec![
                vec![
                    MicroOp::Load {
                        dst: RegId(0),
                        src: Operand::Input(0),
                    },
                    MicroOp::Load {
                        dst: RegId(1),
                        src: Operand::Input(1),
                    },
                ],
                vec![MicroOp::Imp {
                    p: Operand::Reg(RegId(0)),
                    q: RegId(1),
                }],
            ],
            outputs: vec![("f".into(), RegId(1))],
            model_rrams: 2,
        }
    }

    #[test]
    fn valid_program_passes() {
        assert_eq!(tiny().validate(), Ok(()));
        assert_eq!(tiny().num_steps(), 2);
    }

    #[test]
    fn write_conflict_detected() {
        let mut p = tiny();
        p.steps[0].push(MicroOp::False { dst: RegId(0) });
        assert_eq!(
            p.validate(),
            Err(ProgramError::WriteConflict {
                step: 0,
                reg: RegId(0)
            })
        );
    }

    #[test]
    fn out_of_range_detected() {
        let mut p = tiny();
        p.steps[1].push(MicroOp::False { dst: RegId(9) });
        assert!(matches!(
            p.validate(),
            Err(ProgramError::RegOutOfRange { .. })
        ));
        let mut p = tiny();
        p.steps[0][0] = MicroOp::Load {
            dst: RegId(0),
            src: Operand::Input(5),
        };
        assert!(matches!(
            p.validate(),
            Err(ProgramError::InputOutOfRange { input: 5, .. })
        ));
        let mut p = tiny();
        p.outputs[0].1 = RegId(7);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::OutputOutOfRange { .. })
        ));
    }

    #[test]
    fn listing_contains_ops() {
        let l = tiny().listing();
        assert!(l.contains("r1 <- r0 IMP r1"), "{l}");
        assert!(l.contains("out f = r1"));
    }

    #[test]
    fn op_reads_and_dst() {
        let op = MicroOp::Maj {
            p: Operand::Reg(RegId(3)),
            q: Operand::Const(true),
            r: RegId(4),
        };
        assert_eq!(op.dst(), RegId(4));
        assert_eq!(op.reads(), vec![RegId(3), RegId(4)]);
    }
}
