//! Compiler from majority-inverter graphs to RRAM programs.
//!
//! Implements the level-by-level design methodology of Sec. III-B: all
//! majority gates of one MIG level execute simultaneously (their per-gate
//! step sequences interleave into shared time steps), devices released by
//! a finished level are reused by the next, and every level with ingoing
//! complemented edges pays one extra inversion step whose target devices
//! are cleared in parallel with an earlier data-loading step.
//!
//! The emitted program's step count is **exactly** the paper's
//! `S = K·D + L`, and the per-level device footprint it reports is exactly
//! `R = max_i (K·N_i + C_i)` — the integration tests assert both against
//! [`rms_core::cost::RramCost`]. The machine also reports the *physical*
//! peak device count, which exceeds `R` whenever values produced in one
//! level must stay alive past the next level; Table I deliberately models
//! only the per-level footprint (the `repro_*` reports print the measured gap).

use crate::isa::{MicroOp, Operand, Program, RegId};
use rms_core::cost::Realization;
use rms_core::mig::{Mig, MigNode};
use rms_core::signal::MigSignal;
use std::collections::HashMap;

/// Result of compiling an MIG.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    /// The executable program.
    pub program: Program,
    /// `R` of Table I: the modelled per-level device footprint.
    pub model_rrams: u64,
    /// Peak number of simultaneously live devices, including values that
    /// must survive across levels (physical requirement; `>= model_rrams`
    /// in general).
    pub physical_rrams: u64,
    /// The realization the circuit was compiled for.
    pub realization: Realization,
}

/// Register allocator with a free list.
#[derive(Default)]
struct Allocator {
    next: u32,
    free: Vec<RegId>,
    live: u64,
    peak: u64,
}

impl Allocator {
    /// Allocates a device; `true` means it is reused and holds stale state.
    fn alloc(&mut self) -> (RegId, bool) {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(r) = self.free.pop() {
            (r, true)
        } else {
            let r = RegId(self.next);
            self.next += 1;
            (r, false)
        }
    }

    fn release(&mut self, r: RegId) {
        self.live -= 1;
        self.free.push(r);
    }

    /// Allocates a device that was never used before (needed when the value
    /// must be established in the very first step, before any reuse point).
    fn alloc_fresh(&mut self) -> RegId {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        let r = RegId(self.next);
        self.next += 1;
        r
    }
}

/// Where a signal's (uncomplemented) value can be read from.
#[derive(Debug, Clone, Copy)]
enum Loc {
    Const,
    Input(usize),
    Reg(RegId),
}

impl Loc {
    fn operand(self) -> Operand {
        match self {
            Loc::Const => Operand::Const(false),
            Loc::Input(i) => Operand::Input(i),
            Loc::Reg(r) => Operand::Reg(r),
        }
    }
}

/// Compiles `mig` into an RRAM program for the chosen `realization`.
///
/// # Panics
///
/// Panics if the graph has no outputs.
pub fn compile(mig: &Mig, realization: Realization) -> CompiledCircuit {
    assert!(!mig.outputs().is_empty(), "graph has no outputs");
    let mut alloc = Allocator::default();
    let mut steps: Vec<Vec<MicroOp>> = Vec::new();
    // Falses to fold into the next step that gets created.
    let mut pending_clears: Vec<RegId> = Vec::new();

    // Dead nodes are never implemented (they match neither Table I nor
    // what a real array would program): restrict to the output cone.
    let mut alive = vec![false; mig.len()];
    let mut stack: Vec<usize> = mig.outputs().iter().map(|(_, s)| s.node()).collect();
    while let Some(i) = stack.pop() {
        if alive[i] {
            continue;
        }
        alive[i] = true;
        if let MigNode::Maj(kids) = mig.node(i) {
            stack.extend(kids.iter().map(|k| k.node()));
        }
    }

    // Remaining consumer count per alive node (gate fanins + outputs).
    let mut consumers = vec![0u32; mig.len()];
    for (idx, &is_alive) in alive.iter().enumerate() {
        if !is_alive {
            continue;
        }
        if let MigNode::Maj(kids) = mig.node(idx) {
            for k in kids {
                consumers[k.node()] += 1;
            }
        }
    }
    for (_, o) in mig.outputs() {
        consumers[o.node()] += 1;
    }

    // Group alive gates by level.
    let depth = mig.depth() as usize;
    let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); depth + 1];
    for (idx, &is_alive) in alive.iter().enumerate() {
        if !is_alive {
            continue;
        }
        if let MigNode::Maj(_) = mig.node(idx) {
            let lvl = mig.level(idx) as usize;
            debug_assert!(lvl <= depth);
            by_level[lvl].push(idx);
        }
    }

    let mut loc: HashMap<usize, Loc> = HashMap::new();
    loc.insert(0, Loc::Const);
    for i in 0..mig.num_inputs() {
        loc.insert(1 + i, Loc::Input(i));
    }

    let k_gate = realization.steps_per_level() as usize;
    let mut model_rrams = 0u64;

    // Reads the operand for `sig`, assuming complements were already
    // resolved into `inverted`.
    let read = |loc: &HashMap<usize, Loc>,
                inverted: &HashMap<(usize, usize), RegId>,
                gate: usize,
                pin: usize,
                sig: MigSignal|
     -> Operand {
        if sig.is_constant() {
            return Operand::Const(sig.is_complemented());
        }
        if sig.is_complemented() {
            Operand::Reg(inverted[&(gate, pin)])
        } else {
            loc[&sig.node()].operand()
        }
    };

    for gates in by_level.iter().skip(1) {
        if gates.is_empty() {
            continue;
        }
        // --- Inversion step for complemented ingoing edges -------------
        let mut inverted: HashMap<(usize, usize), RegId> = HashMap::new();
        let mut inv_regs: Vec<RegId> = Vec::new();
        let mut inv_step: Vec<MicroOp> = Vec::new();
        for &g in gates {
            let kids = mig.maj_children(g).expect("gate");
            for (pin, sig) in kids.iter().enumerate() {
                if sig.is_complemented() && !sig.is_constant() {
                    let (r, stale) = alloc.alloc();
                    if stale {
                        pending_clears.push(r);
                    }
                    let src = loc[&sig.node()].operand();
                    // NOT on a cleared device: one IMP (q ← src IMP 0 = !src)
                    // or one intrinsic-majority step M(1, ¬src, 0) = !src.
                    let op = match realization {
                        Realization::Imp => MicroOp::Imp { p: src, q: r },
                        Realization::Maj => MicroOp::Maj {
                            p: Operand::Const(true),
                            q: src,
                            r,
                        },
                    };
                    inv_step.push(op);
                    inverted.insert((g, pin), r);
                    inv_regs.push(r);
                }
            }
        }
        let level_footprint =
            realization.rrams_per_gate() * gates.len() as u64 + inv_regs.len() as u64;
        model_rrams = model_rrams.max(level_footprint);

        if !inv_step.is_empty() {
            // Clears of reused devices ride along with the previous step
            // ("in parallel with the data loading step", Sec. III-B); the
            // inversion targets themselves must be cleared before this
            // step, never inside it.
            if let Some(prev) = steps.last_mut() {
                prev.extend(pending_clears.drain(..).map(|dst| MicroOp::False { dst }));
            } else {
                debug_assert!(
                    pending_clears.is_empty(),
                    "nothing can be stale before the first step"
                );
            }
            steps.push(inv_step);
        }

        // --- Gate execution: K interleaved steps ------------------------
        let mut gate_regs: HashMap<usize, Vec<RegId>> = HashMap::new();
        let mut level_steps: Vec<Vec<MicroOp>> = vec![Vec::new(); k_gate];
        for &g in gates {
            let kids = mig.maj_children(g).expect("gate");
            let ops: [Operand; 3] = [
                read(&loc, &inverted, g, 0, kids[0]),
                read(&loc, &inverted, g, 1, kids[1]),
                read(&loc, &inverted, g, 2, kids[2]),
            ];
            let regs: Vec<RegId> = (0..realization.rrams_per_gate())
                .map(|_| alloc.alloc().0)
                .collect();
            match realization {
                Realization::Imp => {
                    emit_imp_gate(&mut level_steps, &regs, ops);
                }
                Realization::Maj => {
                    emit_maj_gate(&mut level_steps, &regs, ops);
                }
            }
            gate_regs.insert(g, regs);
        }
        // Fold any still-pending clears into the first gate step (a data
        // loading step).
        if let Some(first) = level_steps.first_mut() {
            first.extend(pending_clears.drain(..).map(|dst| MicroOp::False { dst }));
        }
        steps.extend(level_steps);

        // --- Release devices --------------------------------------------
        for r in inv_regs {
            alloc.release(r);
        }
        for &g in gates {
            let regs = &gate_regs[&g];
            let out_reg = match realization {
                Realization::Imp => regs[3], // device A of Fig. 3
                Realization::Maj => regs[2], // device Z
            };
            for &r in regs {
                if r != out_reg {
                    alloc.release(r);
                }
            }
            loc.insert(g, Loc::Reg(out_reg));
            // Consume the gate's children.
            let kids = mig.maj_children(g).expect("gate");
            for kid in kids {
                let n = kid.node();
                consumers[n] -= 1;
                if consumers[n] == 0 {
                    if let Some(Loc::Reg(r)) = loc.get(&n) {
                        alloc.release(*r);
                    }
                }
            }
        }
    }

    // --- Outputs ----------------------------------------------------------
    // Pass-through outputs (constants or inputs) need a landing device; the
    // load rides along with the first step when one exists.
    let mut outputs: Vec<(String, RegId)> = Vec::new();
    let mut passthrough: Vec<MicroOp> = Vec::new();
    let mut final_inversions: Vec<MicroOp> = Vec::new();
    for (name, sig) in mig.outputs() {
        let n = sig.node();
        let needs_inv = sig.is_complemented() && !sig.is_constant();
        if needs_inv {
            let (r, stale) = alloc.alloc();
            if stale {
                pending_clears.push(r);
            }
            let src = loc[&n].operand();
            let op = match realization {
                Realization::Imp => MicroOp::Imp { p: src, q: r },
                Realization::Maj => MicroOp::Maj {
                    p: Operand::Const(true),
                    q: src,
                    r,
                },
            };
            final_inversions.push(op);
            outputs.push((name.clone(), r));
        } else {
            match loc[&n] {
                Loc::Reg(r) => outputs.push((name.clone(), r)),
                other => {
                    // Pass-through (input/constant) outputs load in the
                    // very first step, so they need devices no gate ever
                    // touches.
                    let r = alloc.alloc_fresh();
                    let src = if sig.is_constant() {
                        Operand::Const(sig.is_complemented())
                    } else {
                        other.operand()
                    };
                    passthrough.push(MicroOp::Load { dst: r, src });
                    outputs.push((name.clone(), r));
                }
            }
        }
    }
    if !final_inversions.is_empty() {
        model_rrams = model_rrams.max(final_inversions.len() as u64);
        if let Some(prev) = steps.last_mut() {
            prev.extend(pending_clears.drain(..).map(|dst| MicroOp::False { dst }));
        }
        steps.push(final_inversions);
    }
    if !passthrough.is_empty() {
        if let Some(first) = steps.first_mut() {
            first.extend(passthrough);
        } else {
            // A circuit whose outputs are all bare inputs/constants has
            // S = 0 under Table I but still needs one load step to land
            // the values in devices — the only case where the machine's
            // step count exceeds the formula.
            steps.push(passthrough);
        }
    }

    let program = Program {
        num_inputs: mig.num_inputs(),
        num_regs: alloc.next as usize,
        steps,
        outputs,
        model_rrams,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    CompiledCircuit {
        program,
        model_rrams,
        physical_rrams: alloc.peak,
        realization,
    }
}

/// Emits the ten interleaved steps of the Fig. 3 IMP-based gate into the
/// level's step slots. `regs` = [X, Y, Z, A, B, C]; output lands in A.
fn emit_imp_gate(slots: &mut [Vec<MicroOp>], regs: &[RegId], ops: [Operand; 3]) {
    let (x, y, z, a, b, c) = (regs[0], regs[1], regs[2], regs[3], regs[4], regs[5]);
    let rg = Operand::Reg;
    slots[0].extend([
        MicroOp::Load {
            dst: x,
            src: ops[0],
        },
        MicroOp::Load {
            dst: y,
            src: ops[1],
        },
        MicroOp::Load {
            dst: z,
            src: ops[2],
        },
        MicroOp::False { dst: a },
        MicroOp::False { dst: b },
        MicroOp::False { dst: c },
    ]);
    slots[1].push(MicroOp::Imp { p: rg(x), q: a });
    slots[2].push(MicroOp::Imp { p: rg(y), q: b });
    slots[3].push(MicroOp::Imp { p: rg(a), q: y });
    slots[4].push(MicroOp::Imp { p: rg(x), q: b });
    slots[5].push(MicroOp::Imp { p: rg(y), q: c });
    slots[6].push(MicroOp::Imp { p: rg(z), q: c });
    slots[7].push(MicroOp::False { dst: a });
    slots[8].push(MicroOp::Imp { p: rg(b), q: a });
    slots[9].push(MicroOp::Imp { p: rg(c), q: a });
}

/// Emits the three interleaved steps of the MAJ-based gate. `regs` =
/// [X, Y, Z, A]; output lands in Z.
fn emit_maj_gate(slots: &mut [Vec<MicroOp>], regs: &[RegId], ops: [Operand; 3]) {
    let (x, y, z, a) = (regs[0], regs[1], regs[2], regs[3]);
    slots[0].extend([
        MicroOp::Load {
            dst: x,
            src: ops[0],
        },
        MicroOp::Load {
            dst: y,
            src: ops[1],
        },
        MicroOp::Load {
            dst: z,
            src: ops[2],
        },
        MicroOp::False { dst: a },
    ]);
    slots[1].push(MicroOp::Maj {
        p: Operand::Const(true),
        q: Operand::Reg(y),
        r: a,
    });
    slots[2].push(MicroOp::Maj {
        p: Operand::Reg(x),
        q: Operand::Reg(a),
        r: z,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use rms_core::cost::RramCost;
    use rms_logic::bench_suite;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap())
    }

    const SAMPLES: &[&str] = &[
        "exam1_d", "exam3_d", "rd53_f2", "con1_f1", "sao2_f4", "9sym_d",
    ];

    #[test]
    fn compiled_programs_compute_the_mig_function() {
        for name in SAMPLES {
            let mig = bench_mig(name);
            let expect = mig.truth_tables();
            for real in Realization::ALL {
                let cc = compile(&mig, real);
                let got = Machine::truth_tables(&cc.program).unwrap();
                assert_eq!(got, expect, "{name}/{real}");
            }
        }
    }

    #[test]
    fn step_count_matches_table1_formula() {
        for name in SAMPLES {
            let mig = bench_mig(name);
            for real in Realization::ALL {
                let cc = compile(&mig, real);
                let cost = RramCost::of(&mig, real);
                assert_eq!(
                    cc.program.num_steps(),
                    cost.steps,
                    "{name}/{real}: machine steps vs S = K*D + L"
                );
            }
        }
    }

    #[test]
    fn device_footprint_matches_table1_formula() {
        for name in SAMPLES {
            let mig = bench_mig(name);
            for real in Realization::ALL {
                let cc = compile(&mig, real);
                let cost = RramCost::of(&mig, real);
                assert_eq!(
                    cc.model_rrams, cost.rrams,
                    "{name}/{real}: footprint vs R = max(K*Ni + Ci)"
                );
                assert!(
                    cc.physical_rrams >= cc.model_rrams,
                    "{name}/{real}: physical must cover the model"
                );
            }
        }
    }

    #[test]
    fn single_gate_matches_figure_realizations() {
        let mut mig = Mig::with_inputs("g", 3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let g = mig.maj(a, b, c);
        mig.add_output("f", g);
        let imp = compile(&mig, Realization::Imp);
        assert_eq!(imp.program.num_steps(), 10);
        assert_eq!(imp.model_rrams, 6);
        let maj = compile(&mig, Realization::Maj);
        assert_eq!(maj.program.num_steps(), 3);
        assert_eq!(maj.model_rrams, 4);
    }

    #[test]
    fn complemented_edges_cost_one_inversion_step_per_level() {
        let mut mig = Mig::with_inputs("c", 3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let g = mig.maj(!a, !b, c);
        mig.add_output("f", g);
        let cc = compile(&mig, Realization::Maj);
        // 1 inversion step + 3 gate steps.
        assert_eq!(cc.program.num_steps(), 4);
        // 4 devices for the gate + 2 inversion devices.
        assert_eq!(cc.model_rrams, 6);
        let tts = Machine::truth_tables(&cc.program).unwrap();
        for m in 0..8u64 {
            let (av, bv, cv) = (m & 1 == 1, m & 2 != 0, m & 4 != 0);
            let expect = [!av, !bv, cv].iter().filter(|&&x| x).count() >= 2;
            assert_eq!(tts[0].bit(m), expect, "{m}");
        }
    }

    #[test]
    fn complemented_output_adds_final_inversion() {
        let mut mig = Mig::with_inputs("o", 3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let g = mig.maj(a, b, c);
        mig.add_output("f", !g);
        let cc = compile(&mig, Realization::Maj);
        assert_eq!(cc.program.num_steps(), 4); // 3 + 1 final inversion
        let tts = Machine::truth_tables(&cc.program).unwrap();
        for m in 0..8u64 {
            assert_eq!(tts[0].bit(m), m.count_ones() < 2, "{m}");
        }
    }

    #[test]
    fn passthrough_outputs() {
        let mut mig = Mig::with_inputs("p", 2);
        let (a, b) = (mig.input(0), mig.input(1));
        let g = mig.and(a, b);
        mig.add_output("g", g);
        mig.add_output("x", a); // plain input pass-through
        mig.add_output("ni", !b); // complemented input
        mig.add_output("one", mig.constant(true));
        let cc = compile(&mig, Realization::Imp);
        let tts = Machine::truth_tables(&cc.program).unwrap();
        for m in 0..4u64 {
            let (av, bv) = (m & 1 == 1, m & 2 != 0);
            assert_eq!(tts[0].bit(m), av && bv);
            assert_eq!(tts[1].bit(m), av);
            assert_eq!(tts[2].bit(m), !bv);
            assert!(tts[3].bit(m));
        }
    }

    #[test]
    fn device_reuse_happens_across_levels() {
        // A deep chain must reuse devices: physical peak well below
        // gates * K.
        let mut mig = Mig::with_inputs("chain", 3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let mut g = mig.maj(a, b, c);
        for _ in 0..10 {
            g = mig.maj(g, a, b);
        }
        mig.add_output("f", g);
        let cc = compile(&mig, Realization::Maj);
        let total_naive = mig.num_gates() as u64 * 4;
        assert!(
            cc.program.num_regs < total_naive as usize,
            "{} devices allocated, naive would be {}",
            cc.program.num_regs,
            total_naive
        );
    }
}
