//! PLiM-style serial execution — the Programmable Logic-in-Memory computer
//! of Gaillardon et al. (DATE 2016), which the paper cites as the target
//! architecture for its MAJ-based realization.
//!
//! PLiM issues exactly **one** resistive-majority instruction per cycle:
//!
//! ```text
//! RM3(A, B, Z):  Z ← M(A, ¬B, Z)
//! ```
//!
//! where `A`/`B` are operands read from memory (or constants) and `Z` is a
//! memory cell modified in place. Unlike the level-parallel array of
//! [`mod@crate::compile`], nothing executes concurrently, so the instruction
//! count — not `K·D + L` — is the latency. This module compiles an MIG to
//! an RM3 instruction stream and reports that count; comparing it against
//! the parallel schedule quantifies exactly what the crossbar's intra-level
//! parallelism buys.

use crate::isa::{MicroOp, Operand, Program, RegId};
use rms_core::mig::{Mig, MigNode};
use rms_core::signal::MigSignal;
use std::collections::HashMap;

/// Result of compiling an MIG to a PLiM instruction stream.
#[derive(Debug, Clone)]
pub struct PlimCircuit {
    /// The serial program (one micro-op per step).
    pub program: Program,
    /// Total RM3-equivalent instructions (equals the step count).
    pub instructions: u64,
    /// Peak number of simultaneously live memory cells.
    pub cells: u64,
}

#[derive(Default)]
struct Cells {
    next: u32,
    free: Vec<RegId>,
    live: u64,
    peak: u64,
}

impl Cells {
    fn alloc(&mut self) -> (RegId, bool) {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        match self.free.pop() {
            Some(r) => (r, true),
            None => {
                let r = RegId(self.next);
                self.next += 1;
                (r, false)
            }
        }
    }

    fn release(&mut self, r: RegId) {
        self.live -= 1;
        self.free.push(r);
    }
}

/// Compiles `mig` into a fully serial RM3 instruction stream.
///
/// Per majority node `M(x, y, z)` the stream mirrors the paper's MAJ-based
/// realization, executed one instruction at a time: clear the scratch cell
/// (`RM3(0, 1, A)`), invert `y` into it (`RM3(1, y, A)`), seed the result
/// cell with `z`, and fire the gate (`RM3(x, A, Z)`). Complemented operand
/// edges are absorbed for free by swapping which RM3 operand port they
/// feed, except on `z` seeds which pay one extra inversion instruction.
///
/// # Panics
///
/// Panics if the graph has no outputs.
pub fn compile_plim(mig: &Mig) -> PlimCircuit {
    assert!(!mig.outputs().is_empty(), "graph has no outputs");
    // Output-cone restriction, as in the parallel compiler.
    let mut alive = vec![false; mig.len()];
    let mut stack: Vec<usize> = mig.outputs().iter().map(|(_, s)| s.node()).collect();
    while let Some(i) = stack.pop() {
        if alive[i] {
            continue;
        }
        alive[i] = true;
        if let MigNode::Maj(kids) = mig.node(i) {
            stack.extend(kids.iter().map(|k| k.node()));
        }
    }
    let mut consumers = vec![0u32; mig.len()];
    for (idx, &is_alive) in alive.iter().enumerate() {
        if is_alive {
            if let MigNode::Maj(kids) = mig.node(idx) {
                for k in kids {
                    consumers[k.node()] += 1;
                }
            }
        }
    }
    for (_, o) in mig.outputs() {
        consumers[o.node()] += 1;
    }

    let mut cells = Cells::default();
    let mut steps: Vec<Vec<MicroOp>> = Vec::new();
    let mut value: HashMap<usize, RegId> = HashMap::new();
    let emit = |steps: &mut Vec<Vec<MicroOp>>, op: MicroOp| steps.push(vec![op]);

    // Reads the uncomplemented value of a signal as an operand.
    let operand = |sig: MigSignal, value: &HashMap<usize, RegId>, mig: &Mig| -> Operand {
        let n = sig.node();
        if n == 0 {
            return Operand::Const(false);
        }
        match mig.node(n) {
            MigNode::Input(k) => Operand::Input(k as usize),
            _ => Operand::Reg(value[&n]),
        }
    };

    for (idx, &is_alive) in alive.iter().enumerate() {
        if !is_alive {
            continue;
        }
        let MigNode::Maj(kids) = mig.node(idx) else {
            continue;
        };
        let [x, y, z] = kids;
        let (a, a_stale) = cells.alloc(); // scratch holding ¬y'
        let (zr, z_stale) = cells.alloc(); // result cell
        if a_stale {
            emit(&mut steps, MicroOp::False { dst: a });
        }
        // A ← ¬y'. RM3(1, y, A) = M(1, ¬y, 0) = ¬y; a complemented y-edge
        // means we need y itself: RM3(y, 0, A) = M(y, 1, 0) = y.
        let yv = operand(y, &value, mig);
        let y_compl = y.is_complemented() && !y.is_constant();
        let yconst = y.is_constant();
        if yconst {
            // ¬y' is a constant; fold into the seed below via Load.
            emit(
                &mut steps,
                MicroOp::Load {
                    dst: a,
                    src: Operand::Const(y != MigSignal::TRUE),
                },
            );
        } else if y_compl {
            emit(
                &mut steps,
                MicroOp::Maj {
                    p: yv,
                    q: Operand::Const(false),
                    r: a,
                },
            );
        } else {
            emit(
                &mut steps,
                MicroOp::Maj {
                    p: Operand::Const(true),
                    q: yv,
                    r: a,
                },
            );
        }
        // Seed Z with z' (one extra inversion instruction if complemented).
        if z_stale {
            emit(&mut steps, MicroOp::False { dst: zr });
        }
        let zv = operand(z, &value, mig);
        let z_compl = z.is_complemented() && !z.is_constant();
        if z.is_constant() {
            emit(
                &mut steps,
                MicroOp::Load {
                    dst: zr,
                    src: Operand::Const(z == MigSignal::TRUE),
                },
            );
        } else if z_compl {
            // RM3(1, z, Z) with Z = 0 gives ¬z.
            emit(
                &mut steps,
                MicroOp::Maj {
                    p: Operand::Const(true),
                    q: zv,
                    r: zr,
                },
            );
        } else {
            emit(&mut steps, MicroOp::Load { dst: zr, src: zv });
        }
        // Fire the gate: RM3(x', A, Z) = M(x', ¬A, z') = M(x', y', z').
        let xv = operand(x, &value, mig);
        let x_compl = x.is_complemented() && !x.is_constant();
        let xop = if x.is_constant() {
            Operand::Const(x == MigSignal::TRUE)
        } else if x_compl {
            // Need ¬x: one extra inversion through the scratch protocol is
            // avoidable by swapping x into the B port when A is free, but
            // the simple stream pays one instruction.
            let (nx, stale) = cells.alloc();
            if stale {
                emit(&mut steps, MicroOp::False { dst: nx });
            }
            emit(
                &mut steps,
                MicroOp::Maj {
                    p: Operand::Const(true),
                    q: xv,
                    r: nx,
                },
            );
            cells.release(nx);
            Operand::Reg(nx)
        } else {
            xv
        };
        emit(
            &mut steps,
            MicroOp::Maj {
                p: xop,
                q: Operand::Reg(a),
                r: zr,
            },
        );
        cells.release(a);
        value.insert(idx, zr);
        for kid in kids {
            let n = kid.node();
            if n != 0 && !matches!(mig.node(n), MigNode::Input(_)) {
                consumers[n] -= 1;
                if consumers[n] == 0 {
                    cells.release(value[&n]);
                }
            }
        }
    }

    // Outputs.
    let mut outputs = Vec::new();
    for (name, sig) in mig.outputs() {
        let n = sig.node();
        let gate = matches!(mig.node(n), MigNode::Maj(_));
        if gate && !sig.is_complemented() {
            outputs.push((name.clone(), value[&n]));
            continue;
        }
        let (r, stale) = cells.alloc();
        if stale {
            emit(&mut steps, MicroOp::False { dst: r });
        }
        let src = operand(*sig, &value, mig);
        if sig.is_constant() {
            emit(
                &mut steps,
                MicroOp::Load {
                    dst: r,
                    src: Operand::Const(sig.is_complemented()),
                },
            );
        } else if sig.is_complemented() {
            emit(
                &mut steps,
                MicroOp::Maj {
                    p: Operand::Const(true),
                    q: src,
                    r,
                },
            );
        } else {
            emit(&mut steps, MicroOp::Load { dst: r, src });
        }
        outputs.push((name.clone(), r));
    }

    let program = Program {
        num_inputs: mig.num_inputs(),
        num_regs: cells.next as usize,
        steps,
        outputs,
        model_rrams: cells.peak,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    PlimCircuit {
        instructions: program.num_steps(),
        cells: cells.peak,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::machine::Machine;
    use rms_core::cost::Realization;
    use rms_logic::bench_suite;

    fn bench_mig(name: &str) -> Mig {
        Mig::from_netlist(&bench_suite::build(name).unwrap()).compact()
    }

    #[test]
    fn plim_programs_compute_the_mig_function() {
        for name in ["exam1_d", "exam3_d", "rd53_f2", "con1_f1", "sao2_f4"] {
            let mig = bench_mig(name);
            let plim = compile_plim(&mig);
            let got = Machine::truth_tables(&plim.program).unwrap();
            assert_eq!(got, mig.truth_tables(), "{name}");
        }
    }

    #[test]
    fn serial_stream_is_one_op_per_step() {
        let mig = bench_mig("rd53_f2");
        let plim = compile_plim(&mig);
        assert!(plim.program.steps.iter().all(|s| s.len() == 1));
        assert_eq!(plim.instructions, plim.program.num_steps());
    }

    #[test]
    fn parallel_array_beats_serial_plim_in_steps() {
        // What intra-level parallelism buys: the crossbar schedule needs
        // far fewer steps than one-instruction-per-cycle PLiM.
        let mig = bench_mig("9sym_d");
        let plim = compile_plim(&mig);
        let array = compile(&mig, Realization::Maj);
        assert!(
            plim.instructions > 2 * array.program.num_steps(),
            "plim {} vs array {}",
            plim.instructions,
            array.program.num_steps()
        );
    }

    #[test]
    fn complemented_everything_still_correct() {
        let mut mig = Mig::with_inputs("c", 3);
        let (a, b, c) = (mig.input(0), mig.input(1), mig.input(2));
        let g = mig.maj(!a, !b, !c);
        let h = mig.maj(g, !a, mig.constant(true));
        mig.add_output("f", !h);
        let plim = compile_plim(&mig);
        let got = Machine::truth_tables(&plim.program).unwrap();
        assert_eq!(got, mig.truth_tables());
    }

    #[test]
    fn cells_are_reused() {
        let mig = bench_mig("t481");
        let plim = compile_plim(&mig);
        assert!(
            (plim.cells as usize) < plim.program.num_regs.max(2) * 2,
            "peak {} cells, {} allocated",
            plim.cells,
            plim.program.num_regs
        );
        assert!(plim.cells < 3 * mig.num_gates() as u64);
    }
}
