//! Behavioural model of a single RRAM device.
//!
//! An RRAM is a two-terminal resistive switch whose internal state `R`
//! (low/high resistance, read as logic 0/1) changes under the voltage
//! applied across its terminals `P` (top) and `Q` (bottom). The paper's
//! Fig. 2 gives the next-state tables, which close to the *intrinsic
//! majority* form used throughout the paper:
//!
//! ```text
//! R' = MAJ(P, Q, R) with Q acting inverted:  R' = M(P, ¬Q, R)
//! ```
//!
//! The three named voltage configurations are special cases:
//! `V_SET` = (P=1, Q=0) forces `R' = 1`, `V_CLEAR` = (P=0, Q=1) forces
//! `R' = 0`, and `V_COND` = (P=Q) retains the state.

/// The three drive conditions the paper names (Sec. II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// `V_SET`: (P, Q) = (1, 0); switches the device to 1.
    Set,
    /// `V_CLEAR`: (P, Q) = (0, 1); switches the device to 0.
    Clear,
    /// `V_COND` with both terminals at the same level; retains the state.
    Cond,
}

impl Drive {
    /// The terminal levels this drive applies.
    pub fn terminals(self) -> (bool, bool) {
        match self {
            Drive::Set => (true, false),
            Drive::Clear => (false, true),
            Drive::Cond => (false, false),
        }
    }
}

/// One RRAM device.
///
/// # Example
///
/// ```
/// use rms_rram::device::Rram;
///
/// let mut r = Rram::new(false);
/// r.apply(true, false); // V_SET
/// assert!(r.state());
/// r.apply(false, true); // V_CLEAR
/// assert!(!r.state());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rram {
    state: bool,
}

impl Rram {
    /// A device initialized to `state`.
    pub fn new(state: bool) -> Self {
        Rram { state }
    }

    /// Current logic state (1 = low resistance).
    pub fn state(&self) -> bool {
        self.state
    }

    /// Applies terminal levels `(p, q)` for one step: `R' = M(p, ¬q, R)`
    /// (the intrinsic majority of Fig. 2).
    #[allow(clippy::nonminimal_bool)] // canonical majority form
    pub fn apply(&mut self, p: bool, q: bool) {
        let nq = !q;
        self.state = (p && nq) || (p && self.state) || (nq && self.state);
    }

    /// Applies one of the named drive conditions.
    pub fn drive(&mut self, d: Drive) {
        let (p, q) = d.terminals();
        self.apply(p, q);
    }
}

/// The material-implication gate of Fig. 1: two devices `P` and `Q` share a
/// load resistor; applying `V_COND` to `P` and `V_SET` to `Q` executes
/// `q' = p̄ + q` (`p IMP q`) in one step.
///
/// # Example
///
/// ```
/// use rms_rram::device::ImpGate;
///
/// let mut g = ImpGate::new(true, false);
/// g.imply();
/// assert!(!g.q()); // 1 IMP 0 = 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImpGate {
    p: Rram,
    q: Rram,
}

impl ImpGate {
    /// A gate with the devices preloaded to `p` and `q`.
    pub fn new(p: bool, q: bool) -> Self {
        ImpGate {
            p: Rram::new(p),
            q: Rram::new(q),
        }
    }

    /// State of the `P` device.
    pub fn p(&self) -> bool {
        self.p.state()
    }

    /// State of the `Q` device (the gate output).
    pub fn q(&self) -> bool {
        self.q.state()
    }

    /// Executes one IMP step: `q ← p IMP q = p̄ + q`; `p` is unchanged.
    ///
    /// Electrically, `V_COND` on `P` and `V_SET` on `Q` interact through
    /// the shared load resistor: when `p = 1` the voltage across `Q` stays
    /// below threshold and `q` retains its state; when `p = 0` the full
    /// `V_SET` switches `q` to 1.
    pub fn imply(&mut self) {
        let q_next = !self.p.state() || self.q.state();
        self.q = Rram::new(q_next);
    }

    /// Executes FALSE on `Q` (`V_CLEAR`).
    pub fn clear_q(&mut self) {
        self.q.drive(Drive::Clear);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_truth_tables() {
        // R = 0 plane: R' = P AND (NOT Q)
        for (p, q, expect) in [
            (false, false, false),
            (false, true, false),
            (true, false, true),
            (true, true, false),
        ] {
            let mut r = Rram::new(false);
            r.apply(p, q);
            assert_eq!(r.state(), expect, "R=0 P={p} Q={q}");
        }
        // R = 1 plane: R' = P OR (NOT Q)
        for (p, q, expect) in [
            (false, false, true),
            (false, true, false),
            (true, false, true),
            (true, true, true),
        ] {
            let mut r = Rram::new(true);
            r.apply(p, q);
            assert_eq!(r.state(), expect, "R=1 P={p} Q={q}");
        }
    }

    #[test]
    fn next_state_is_majority() {
        for m in 0..8u32 {
            let (p, q, r0) = (m & 1 == 1, m & 2 != 0, m & 4 != 0);
            let mut r = Rram::new(r0);
            r.apply(p, q);
            let maj = [p, !q, r0].iter().filter(|&&b| b).count() >= 2;
            assert_eq!(r.state(), maj, "P={p} Q={q} R={r0}");
        }
    }

    #[test]
    fn named_drives() {
        for init in [false, true] {
            let mut r = Rram::new(init);
            r.drive(Drive::Cond);
            assert_eq!(r.state(), init, "COND retains");
            r.drive(Drive::Set);
            assert!(r.state(), "SET forces 1");
            r.drive(Drive::Clear);
            assert!(!r.state(), "CLEAR forces 0");
        }
    }

    #[test]
    fn fig1_imp_truth_table() {
        for (p, q, expect) in [
            (false, false, true),
            (false, true, true),
            (true, false, false),
            (true, true, true),
        ] {
            let mut g = ImpGate::new(p, q);
            g.imply();
            assert_eq!(g.q(), expect, "p={p} q={q}");
            assert_eq!(g.p(), p, "p must be preserved");
        }
    }

    #[test]
    fn false_operation() {
        let mut g = ImpGate::new(true, true);
        g.clear_q();
        assert!(!g.q());
        assert!(g.p());
    }
}
