//! Rendering of [`FlowReport`] as human-readable text or machine-readable
//! JSON.
//!
//! The JSON writer is hand-rolled (the build is offline, so no `serde`):
//! it emits a stable, flat-ish document whose field names match the
//! [`FlowReport`] structure.

use crate::pipeline::{FlowReport, StageTimings};
use rms_core::cost::{MigStats, RramCost};
use std::fmt::Write as _;
use std::time::Duration;

/// Renders a report as an aligned text block for terminals.
pub fn render_text(r: &FlowReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "circuit {:?}: {} inputs, {} outputs, {} source gates",
        r.name, r.num_inputs, r.num_outputs, r.source_gates
    );
    let _ = writeln!(
        out,
        "flow: frontend={} algorithm={} realization={} effort={} engine={}",
        r.frontend, r.algorithm, r.realization, r.effort, r.engine
    );
    let _ = writeln!(
        out,
        "mig:  {} -> {} majority nodes, depth {} -> {}, complemented edges {} -> {}",
        r.initial.gates,
        r.optimized.gates,
        r.initial.depth,
        r.optimized.depth,
        r.initial.complemented_edges,
        r.optimized.complemented_edges
    );
    let _ = writeln!(
        out,
        "opt:  {} cycles, {} passes, {} cut rewrites, peak {} nodes{}",
        r.opt.cycles,
        r.opt.passes,
        r.opt.rewrites,
        r.opt.peak_nodes,
        if r.opt.cancelled {
            " (truncated at deadline)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "sweep: {} classes, {} merges proved, {} resubs accepted, {} SAT conflicts ({} budget-exhausted)",
        r.opt.fraig_classes,
        r.opt.fraig_merges,
        r.opt.resubs,
        r.opt.sat_conflicts,
        r.opt.sat_budget_exhausted
    );
    let _ = writeln!(
        out,
        "cost ({}): R = {} devices, S = {} steps   (before optimization: R = {}, S = {})",
        r.realization,
        r.cost.rrams,
        r.cost.steps,
        initial_cost(r).rrams,
        initial_cost(r).steps
    );
    let _ = writeln!(
        out,
        "array: {} steps, {} physical devices   plim: {} instructions, {} cells",
        r.array_steps, r.array_physical_rrams, r.plim_instructions, r.plim_cells
    );
    let _ = writeln!(
        out,
        "verification: {} [policy: {}]",
        r.verify.label(),
        r.verify_mode
    );
    let t = &r.timings;
    let _ = writeln!(
        out,
        "time: parse {} + construct {} + optimize {} + compile {} + verify {}",
        ms(t.parse),
        ms(t.construct),
        ms(t.optimize),
        ms(t.compile),
        ms(t.verify)
    );
    out
}

/// Schema identifier stamped into every JSON report (the first field),
/// so machine consumers — `rms serve` clients in particular — can detect
/// format drift instead of silently misparsing. Bump the suffix whenever
/// a field is renamed, removed, or changes meaning; adding fields is
/// backward-compatible and does not bump it.
pub const REPORT_SCHEMA: &str = "rms-flow-report-v1";

/// Renders a report as a JSON object (one document, trailing newline).
pub fn render_json(r: &FlowReport) -> String {
    let mut j = Json::new();
    j.open();
    j.str_field("schema", REPORT_SCHEMA);
    j.str_field("name", &r.name);
    j.num_field("num_inputs", r.num_inputs as u64);
    j.num_field("num_outputs", r.num_outputs as u64);
    j.num_field("source_gates", r.source_gates as u64);
    j.str_field("algorithm", &r.algorithm.to_string());
    j.str_field("realization", &r.realization.to_string());
    j.num_field("effort", r.effort as u64);
    j.str_field("frontend", &r.frontend.to_string());
    j.str_field("engine", &r.engine.to_string());
    j.obj_field("initial", |j| mig_stats(j, &r.initial));
    j.obj_field("optimized", |j| mig_stats(j, &r.optimized));
    j.obj_field("cost", |j| rram_cost(j, &r.cost));
    j.obj_field("array", |j| {
        j.num_field("steps", r.array_steps);
        j.num_field("physical_rrams", r.array_physical_rrams);
    });
    j.obj_field("plim", |j| {
        j.num_field("instructions", r.plim_instructions);
        j.num_field("cells", r.plim_cells);
    });
    j.obj_field("opt", |j| {
        j.num_field("cycles", r.opt.cycles as u64);
        j.num_field("passes", r.opt.passes);
        j.num_field("rewrites", r.opt.rewrites);
        j.num_field("gates_before", r.opt.gates_before);
        j.num_field("gates_after", r.opt.gates_after);
        j.num_field("peak_nodes", r.opt.peak_nodes);
        j.num_field("fraig_classes", r.opt.fraig_classes);
        j.num_field("fraig_merges", r.opt.fraig_merges);
        j.num_field("resubs", r.opt.resubs);
        j.num_field("sat_conflicts", r.opt.sat_conflicts);
        j.num_field("sat_budget_exhausted", r.opt.sat_budget_exhausted);
        j.bool_field("cancelled", r.opt.cancelled);
    });
    j.str_field("verification", &r.verify.label());
    j.obj_field("verify", |j| {
        j.str_field("mode", &r.verify_mode.to_string());
        let (method, conflicts, decisions) = match &r.verify {
            crate::verify::VerifyOutcome::Proved {
                conflicts,
                decisions,
            } => ("sat-proved", *conflicts, *decisions),
            crate::verify::VerifyOutcome::Exhaustive => ("exhaustive", 0, 0),
            crate::verify::VerifyOutcome::Sampled { .. } => ("sampled", 0, 0),
            crate::verify::VerifyOutcome::Skipped => ("skipped", 0, 0),
            crate::verify::VerifyOutcome::Failed { .. } => ("failed", 0, 0),
        };
        j.str_field("method", method);
        j.bool_field("proof", r.verify.is_proof());
        j.num_field("sat_conflicts", conflicts);
        j.num_field("sat_decisions", decisions);
    });
    j.num_field("verify_seed", r.verify_seed);
    j.obj_field("timings_ms", |j| timings(j, &r.timings));
    j.close();
    j.finish()
}

/// Table I metrics of the *initial* graph for the report's realization.
fn initial_cost(r: &FlowReport) -> RramCost {
    match r.realization {
        rms_core::Realization::Imp => r.initial.imp,
        rms_core::Realization::Maj => r.initial.maj,
    }
}

fn mig_stats(j: &mut Json, s: &MigStats) {
    j.num_field("gates", s.gates);
    j.num_field("depth", s.depth);
    j.num_field("complemented_edges", s.complemented_edges);
    j.num_field("levels_with_compl", s.levels_with_compl);
    j.obj_field("imp", |j| rram_cost(j, &s.imp));
    j.obj_field("maj", |j| rram_cost(j, &s.maj));
}

fn rram_cost(j: &mut Json, c: &RramCost) {
    j.num_field("rrams", c.rrams);
    j.num_field("steps", c.steps);
}

fn timings(j: &mut Json, t: &StageTimings) {
    j.float_field("parse", t.parse.as_secs_f64() * 1e3);
    j.float_field("construct", t.construct.as_secs_f64() * 1e3);
    j.float_field("optimize", t.optimize.as_secs_f64() * 1e3);
    j.float_field("compile", t.compile.as_secs_f64() * 1e3);
    j.float_field("verify", t.verify.as_secs_f64() * 1e3);
}

fn ms(d: Duration) -> String {
    format!("{:.2?}", d)
}

/// A tiny JSON object writer: fields are appended in call order, commas
/// and escaping handled internally.
struct Json {
    out: String,
    needs_comma: Vec<bool>,
}

impl Json {
    fn new() -> Self {
        Json {
            out: String::new(),
            needs_comma: Vec::new(),
        }
    }

    fn open(&mut self) {
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn close(&mut self) {
        self.out.push('}');
        self.needs_comma.pop();
    }

    fn key(&mut self, name: &str) {
        if let Some(c) = self.needs_comma.last_mut() {
            if *c {
                self.out.push(',');
            }
            *c = true;
        }
        let _ = write!(self.out, "\"{}\":", escape(name));
    }

    fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        let _ = write!(self.out, "\"{}\"", escape(value));
    }

    fn num_field(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.out, "{value}");
    }

    fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        let _ = write!(self.out, "{value}");
    }

    fn float_field(&mut self, name: &str, value: f64) {
        self.key(name);
        let _ = write!(self.out, "{value:.3}");
    }

    fn obj_field(&mut self, name: &str, body: impl FnOnce(&mut Json)) {
        self.key(name);
        self.open();
        body(self);
        self.close();
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// Escapes a string for inclusion in a JSON document (used by every
/// hand-rolled JSON emitter in the workspace — the build is offline, so
/// no `serde`).
pub fn escape_json(s: &str) -> String {
    escape(s)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputFormat;
    use crate::Pipeline;

    fn sample_report() -> FlowReport {
        Pipeline::from_str(
            InputFormat::Blif,
            ".model j\n.inputs a b c\n.outputs f\n.names a b c f\n111 1\n000 1\n.end\n",
            "j",
        )
        .unwrap()
        .effort(4)
        .run()
        .unwrap()
        .report
    }

    #[test]
    fn text_mentions_the_essentials() {
        let text = render_text(&sample_report());
        assert!(text.contains("circuit \"j\""));
        assert!(text.contains("verification: exhaustive"));
        assert!(text.contains("R = "));
        assert!(text.contains("cut rewrites"));
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let json = render_json(&sample_report());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(
            json.starts_with(&format!("{{\"schema\":\"{REPORT_SCHEMA}\"")),
            "schema version must lead the report: {json}"
        );
        assert!(json.contains("\"algorithm\":\"RRAM costs\""));
        assert!(json.contains("\"cost\":{\"rrams\":"));
        assert!(json.contains("\"opt\":{\"cycles\":"));
        assert!(json.contains("\"verify\":{\"mode\":\"auto\""));
        assert!(json.contains("\"method\":\"exhaustive\""));
        assert!(json.contains("\"proof\":true"));
        assert!(json.contains("\"verify_seed\":24301"));
        assert!(json.ends_with("}\n"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
