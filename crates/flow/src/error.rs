//! Error type shared by the pipeline stages.

use rms_logic::ParseCircuitError;
use std::fmt;

/// Anything that can go wrong between reading a circuit and producing a
/// verified RRAM program.
#[derive(Debug)]
pub enum FlowError {
    /// A file could not be read.
    Io {
        /// Path as given by the user.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The circuit description was malformed.
    Parse(ParseCircuitError),
    /// The input contained no circuit at all (empty, or only comments
    /// and blank lines) — distinct from a malformed circuit so callers
    /// can give a direct "no input" diagnostic.
    EmptyInput,
    /// An embedded benchmark name was not found.
    UnknownBenchmark(String),
    /// A requested configuration is outside what a stage supports (for
    /// example a BDD frontend on a circuit too wide for truth tables).
    Unsupported(String),
    /// The compiled program disagreed with the reference netlist.
    Verification(String),
    /// The run was abandoned at a cooperative-cancellation checkpoint
    /// (request deadline or explicit cancel) before producing a result.
    Timeout(String),
}

impl FlowError {
    /// Wraps an I/O error with the offending path.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        FlowError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Io { path, source } => write!(f, "{path}: {source}"),
            FlowError::Parse(e) => write!(f, "parse error: {e}"),
            FlowError::EmptyInput => {
                write!(
                    f,
                    "empty input: no circuit found (only blank lines or comments)"
                )
            }
            FlowError::UnknownBenchmark(name) => {
                write!(
                    f,
                    "unknown embedded benchmark {name:?} (see `rms bench --list`)"
                )
            }
            FlowError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            FlowError::Verification(msg) => write!(f, "verification failed: {msg}"),
            FlowError::Timeout(msg) => write!(f, "timeout: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Io { source, .. } => Some(source),
            FlowError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseCircuitError> for FlowError {
    fn from(e: ParseCircuitError) -> Self {
        FlowError::Parse(e)
    }
}
