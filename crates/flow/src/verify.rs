//! Tiered machine-level verification: exhaustive, SAT-proved, or sampled.
//!
//! Every pipeline run checks its compiled programs against the source
//! netlist. Three tiers exist, selected by [`VerifyMode`] and the input
//! width:
//!
//! | Tier | When | Guarantee |
//! |---|---|---|
//! | exhaustive | `n ≤ 14` inputs (under [`VerifyMode::Auto`]) | all `2^n` minterms simulated |
//! | SAT proof | `n > 14`, or forced with [`VerifyMode::Sat`] | miter refuted by the `rms-sat` CDCL solver — a proof at any width |
//! | sampled | explicit [`VerifyMode::Sampled`] opt-out only | 64 random 64-bit pattern words — evidence, not proof |
//!
//! Historically the pipeline silently degraded to sampling above the
//! cutoff; the SAT tier replaces that, so a "pass" now means *proved*
//! regardless of width. Sampling survives only as an explicit opt-out
//! (`--verify sampled`) for quick smoke runs.
//!
//! Every failing tier reports a concrete counterexample input assignment
//! in [`VerifyOutcome::Failed`] — the SAT model gives it for free, the
//! exhaustive tier decodes the differing minterm, and the sampled tier
//! extracts the differing bit lane.
//!
//! [`check_netlists`] applies the same policy to two standalone circuits
//! (the `rms verify` subcommand and the differential test harness).

use crate::error::FlowError;
use rms_core::CancelToken;
use rms_logic::netlist::{Netlist, NetlistBuilder, Wire};
use rms_logic::sim::random_patterns;
use rms_logic::tt::MAX_VARS;
use rms_rram::isa::Program;
use rms_rram::machine::Machine;
use rms_sat::{
    check_netlist_vs_program_cancellable, check_netlists_limited, MiterError, MiterOutcome,
};

/// Inputs wider than this use the SAT tier rather than exhaustive
/// simulation (under [`VerifyMode::Auto`]).
pub const EXHAUSTIVE_VERIFY_VARS: usize = 14;

/// Number of 64-bit pattern words for sampled verification.
pub const VERIFY_SAMPLE_WORDS: usize = 64;

/// Number of 64-bit pattern words simulated **before** any SAT proof is
/// attempted: a miter for inequivalent circuits usually has abundant
/// counterexamples, and word-parallel simulation finds one in
/// microseconds where the solver would spend conflicts. Equivalent
/// circuits pass through to the proof unchanged — the spot-check can
/// only fail fast, never claim equivalence.
pub const PRE_SAT_SPOT_WORDS: usize = 4;

/// Conflict budget per SAT miter. Every bundled benchmark proves well
/// under this (the largest, `apex1`, needs ~17k conflicts), but
/// user-supplied circuits can be adversarial for any SAT solver
/// (a 32-input multiplier miter is exponentially hard), so the proof
/// attempt is bounded: under [`VerifyMode::Auto`] an exhausted budget
/// falls back to sampled verification; under [`VerifyMode::Sat`] it is
/// an error (the caller explicitly demanded a proof).
pub const SAT_CONFLICT_BUDGET: u64 = 500_000;

/// How verification is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Tiered policy: exhaustive up to [`EXHAUSTIVE_VERIFY_VARS`] inputs,
    /// SAT proof above.
    #[default]
    Auto,
    /// Force a SAT proof regardless of width.
    Sat,
    /// Exhaustive below the cutoff, random sampling above — the explicit
    /// opt-out of formal checking (the pre-SAT behaviour).
    Sampled,
    /// Skip verification entirely.
    Off,
}

impl VerifyMode {
    /// Parses a mode name as given on the command line.
    pub fn from_name(name: &str) -> Option<VerifyMode> {
        match name.to_ascii_lowercase().as_str() {
            "auto" | "tiered" | "on" => Some(VerifyMode::Auto),
            "sat" | "proof" | "formal" => Some(VerifyMode::Sat),
            "sampled" | "sample" | "random" => Some(VerifyMode::Sampled),
            "off" | "none" | "skip" => Some(VerifyMode::Off),
            _ => None,
        }
    }
}

impl std::fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyMode::Auto => write!(f, "auto"),
            VerifyMode::Sat => write!(f, "sat"),
            VerifyMode::Sampled => write!(f, "sampled"),
            VerifyMode::Off => write!(f, "off"),
        }
    }
}

/// Outcome of the verification stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Verification was disabled.
    Skipped,
    /// Every minterm was simulated and matched.
    Exhaustive,
    /// A SAT miter was refuted: equivalence is *proved* at full width.
    Proved {
        /// Conflicts over all refutations of the run.
        conflicts: u64,
        /// Branching decisions over all refutations of the run.
        decisions: u64,
    },
    /// Random patterns matched (explicit opt-out — not a proof).
    Sampled {
        /// Number of 64-bit pattern words simulated.
        words: usize,
    },
    /// A mismatch was found.
    Failed {
        /// What disagreed (which program or circuit, which tier).
        what: String,
        /// A disagreeing input assignment (index `i` = primary input
        /// `i`); empty when the mismatch is structural (e.g. different
        /// output counts).
        counterexample: Vec<bool>,
    },
}

impl VerifyOutcome {
    /// Whether verification actually ran and observed no mismatch.
    pub fn passed(&self) -> bool {
        !matches!(self, VerifyOutcome::Skipped | VerifyOutcome::Failed { .. })
    }

    /// Whether the outcome is a *guarantee* over the full input space
    /// (exhaustive simulation or a SAT proof).
    pub fn is_proof(&self) -> bool {
        matches!(
            self,
            VerifyOutcome::Exhaustive | VerifyOutcome::Proved { .. }
        )
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            VerifyOutcome::Skipped => "skipped".into(),
            VerifyOutcome::Exhaustive => "exhaustive".into(),
            VerifyOutcome::Proved {
                conflicts,
                decisions,
            } => {
                format!("proved (SAT, {conflicts} conflicts, {decisions} decisions)")
            }
            VerifyOutcome::Sampled { words } => format!("sampled ({words} words)"),
            VerifyOutcome::Failed { what, .. } => format!("FAILED ({what})"),
        }
    }
}

/// Renders a counterexample assignment with the circuit's input names
/// (`x0=1 x1=0 …`).
pub fn format_assignment(names: &[String], inputs: &[bool]) -> String {
    if inputs.is_empty() {
        return "(structural mismatch, no assignment)".into();
    }
    inputs
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let name = names.get(i).map(|s| s.as_str()).unwrap_or("?");
            format!("{name}={}", b as u8)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Checks both compiled programs against the netlist under the tiered
/// policy. Mismatches come back as [`VerifyOutcome::Failed`]; only
/// structurally invalid programs (a toolchain bug) are hard errors.
pub(crate) fn verify_programs(
    netlist: &Netlist,
    programs: &[(&str, &Program)],
    mode: VerifyMode,
    seed: u64,
    cancel: &CancelToken,
) -> Result<VerifyOutcome, FlowError> {
    if mode == VerifyMode::Off {
        return Ok(VerifyOutcome::Skipped);
    }
    let n = netlist.num_inputs();
    if mode != VerifyMode::Sat && n <= EXHAUSTIVE_VERIFY_VARS.min(MAX_VARS) {
        let reference = netlist.truth_tables();
        for &(what, program) in programs {
            let got = Machine::truth_tables(program)
                .map_err(|e| FlowError::Verification(format!("{what}: invalid program: {e}")))?;
            if got != reference {
                let (o, m) = first_diff(&got, &reference);
                return Ok(VerifyOutcome::Failed {
                    what: format!("{what} program differs from the netlist on output {o}"),
                    counterexample: minterm_bits(m, n),
                });
            }
        }
        return Ok(VerifyOutcome::Exhaustive);
    }
    if mode == VerifyMode::Sampled {
        let mut machine = Machine::new();
        for pattern in random_patterns(n, VERIFY_SAMPLE_WORDS, seed) {
            let reference = netlist.simulate_words(&pattern);
            for &(what, program) in programs {
                let got = machine.run_words(program, &pattern).map_err(|e| {
                    FlowError::Verification(format!("{what}: invalid program: {e}"))
                })?;
                if got != reference {
                    let (o, lane) = first_word_diff(&got, &reference);
                    return Ok(VerifyOutcome::Failed {
                        what: format!(
                            "{what} program differs from the netlist on output {o} (sampled)"
                        ),
                        counterexample: lane_bits(&pattern, lane),
                    });
                }
            }
        }
        return Ok(VerifyOutcome::Sampled {
            words: VERIFY_SAMPLE_WORDS,
        });
    }
    // Word-parallel spot-check in front of the SAT tier: a buggy
    // program almost always differs on random words, which is far
    // cheaper to find by simulation than by refutation.
    let mut machine = Machine::new();
    for pattern in random_patterns(n, PRE_SAT_SPOT_WORDS, seed) {
        let reference = netlist.simulate_words(&pattern);
        for &(what, program) in programs {
            let got = machine
                .run_words(program, &pattern)
                .map_err(|e| FlowError::Verification(format!("{what}: invalid program: {e}")))?;
            if got != reference {
                let (o, lane) = first_word_diff(&got, &reference);
                return Ok(VerifyOutcome::Failed {
                    what: format!(
                        "{what} program differs from the netlist on output {o} (pre-SAT spot-check)"
                    ),
                    counterexample: lane_bits(&pattern, lane),
                });
            }
        }
    }
    // SAT tier: refute a miter per program, under a conflict budget.
    let (mut conflicts, mut decisions) = (0u64, 0u64);
    for &(what, program) in programs {
        match check_netlist_vs_program_cancellable(
            netlist,
            program,
            Some(SAT_CONFLICT_BUDGET),
            cancel,
        ) {
            Ok(Some(MiterOutcome::Equivalent {
                conflicts: c,
                decisions: d,
            })) => {
                conflicts += c;
                decisions += d;
            }
            Ok(Some(MiterOutcome::Counterexample { inputs })) => {
                return Ok(VerifyOutcome::Failed {
                    what: format!("{what} program differs from the netlist (SAT counterexample)"),
                    counterexample: inputs,
                });
            }
            Ok(None) if cancel.cancelled() => {
                // `None` is also what a cancelled solver returns; the
                // token tells the two apart.
                return Err(FlowError::Timeout(format!(
                    "{what}: verification abandoned at the request deadline"
                )));
            }
            Ok(None) if mode == VerifyMode::Auto => {
                // Budget exhausted on an adversarial instance: degrade
                // to sampling rather than hang (an explicit
                // `--verify sat` would error out instead).
                return verify_programs(netlist, programs, VerifyMode::Sampled, seed, cancel);
            }
            Ok(None) => {
                return Err(FlowError::Verification(format!(
                    "{what}: SAT proof gave up after {SAT_CONFLICT_BUDGET} conflicts; \
                     re-run with `--verify sampled` for a non-proof check"
                )));
            }
            Err(e) => {
                return Err(FlowError::Verification(format!("{what}: {e}")));
            }
        }
    }
    Ok(VerifyOutcome::Proved {
        conflicts,
        decisions,
    })
}

/// Checks two standalone circuits for functional equivalence under the
/// tiered policy.
///
/// Inputs are matched by name when both circuits declare the same name
/// set (in any order) and by position otherwise; outputs are always
/// matched by position.
///
/// # Errors
///
/// Returns [`FlowError::Unsupported`] when the circuits declare
/// different input counts (nothing meaningful can be compared).
pub fn check_netlists(
    a: &Netlist,
    b: &Netlist,
    mode: VerifyMode,
    seed: u64,
) -> Result<VerifyOutcome, FlowError> {
    if mode == VerifyMode::Off {
        return Ok(VerifyOutcome::Skipped);
    }
    if a.num_inputs() != b.num_inputs() {
        return Err(FlowError::Unsupported(format!(
            "cannot compare {:?} ({} inputs) with {:?} ({} inputs)",
            a.name(),
            a.num_inputs(),
            b.name(),
            b.num_inputs()
        )));
    }
    let aligned;
    let b = match input_alignment(a, b) {
        Some(order) => {
            aligned = permute_inputs(b, &order);
            &aligned
        }
        None => b,
    };
    if a.num_outputs() != b.num_outputs() {
        return Ok(VerifyOutcome::Failed {
            what: format!(
                "output counts differ: {} vs {}",
                a.num_outputs(),
                b.num_outputs()
            ),
            counterexample: Vec::new(),
        });
    }
    let n = a.num_inputs();
    if mode != VerifyMode::Sat && n <= EXHAUSTIVE_VERIFY_VARS.min(MAX_VARS) {
        let ta = a.truth_tables();
        let tb = b.truth_tables();
        if ta != tb {
            let (o, m) = first_diff(&tb, &ta);
            return Ok(VerifyOutcome::Failed {
                what: format!("circuits differ on output {o}"),
                counterexample: minterm_bits(m, n),
            });
        }
        return Ok(VerifyOutcome::Exhaustive);
    }
    if mode == VerifyMode::Sampled {
        for pattern in random_patterns(n, VERIFY_SAMPLE_WORDS, seed) {
            let wa = a.simulate_words(&pattern);
            let wb = b.simulate_words(&pattern);
            if wa != wb {
                let (o, lane) = first_word_diff(&wb, &wa);
                return Ok(VerifyOutcome::Failed {
                    what: format!("circuits differ on output {o} (sampled)"),
                    counterexample: lane_bits(&pattern, lane),
                });
            }
        }
        return Ok(VerifyOutcome::Sampled {
            words: VERIFY_SAMPLE_WORDS,
        });
    }
    // Word-parallel spot-check in front of the SAT tier (fail fast on
    // random-word disagreement; agreement proves nothing and falls
    // through to the miter).
    for pattern in random_patterns(n, PRE_SAT_SPOT_WORDS, seed) {
        let wa = a.simulate_words(&pattern);
        let wb = b.simulate_words(&pattern);
        if wa != wb {
            let (o, lane) = first_word_diff(&wb, &wa);
            return Ok(VerifyOutcome::Failed {
                what: format!("circuits differ on output {o} (pre-SAT spot-check)"),
                counterexample: lane_bits(&pattern, lane),
            });
        }
    }
    match check_netlists_limited(a, b, Some(SAT_CONFLICT_BUDGET)) {
        Ok(Some(MiterOutcome::Equivalent {
            conflicts,
            decisions,
        })) => Ok(VerifyOutcome::Proved {
            conflicts,
            decisions,
        }),
        Ok(Some(MiterOutcome::Counterexample { inputs })) => Ok(VerifyOutcome::Failed {
            what: "circuits differ (SAT counterexample)".into(),
            counterexample: inputs,
        }),
        Ok(None) if mode == VerifyMode::Auto => {
            // Budget exhausted: degrade to sampling rather than hang.
            check_netlists(a, b, VerifyMode::Sampled, seed)
        }
        Ok(None) => Err(FlowError::Verification(format!(
            "SAT proof gave up after {SAT_CONFLICT_BUDGET} conflicts; \
             re-run with `--verify sampled` for a non-proof check"
        ))),
        Err(MiterError::OutputCountMismatch { a, b }) => Ok(VerifyOutcome::Failed {
            what: format!("output counts differ: {a} vs {b}"),
            counterexample: Vec::new(),
        }),
        Err(e) => Err(FlowError::Verification(e.to_string())),
    }
}

/// When both circuits declare the same input-name set in a different
/// order, returns `order` such that `b` input `order[i]` corresponds to
/// `a` input `i`.
fn input_alignment(a: &Netlist, b: &Netlist) -> Option<Vec<usize>> {
    if a.input_names() == b.input_names() {
        return None; // already aligned
    }
    let order: Vec<usize> = a
        .input_names()
        .iter()
        .map(|name| b.input_names().iter().position(|n| n == name))
        .collect::<Option<Vec<_>>>()?;
    // Must be a permutation (no duplicate names mapping to one index).
    let mut seen = vec![false; order.len()];
    for &i in &order {
        if seen[i] {
            return None;
        }
        seen[i] = true;
    }
    Some(order)
}

/// Rebuilds `nl` with its inputs permuted: new input `i` is old input
/// `order[i]` (names preserved).
fn permute_inputs(nl: &Netlist, order: &[usize]) -> Netlist {
    let mut b = NetlistBuilder::new(nl.name());
    // map[old_node] = new wire (uncomplemented).
    let mut map: Vec<Wire> = vec![Wire::new(0, false); nl.num_nodes()];
    let mut new_inputs: Vec<Wire> = vec![Wire::new(0, false); order.len()];
    for &old_pos in order {
        new_inputs[old_pos] = b.input(nl.input_names()[old_pos].clone());
    }
    for (old_pos, &w) in new_inputs.iter().enumerate() {
        map[nl.input_wire(old_pos).node()] = w;
    }
    let remap = |map: &[Wire], w: Wire| -> Wire {
        let base = map[w.node()];
        if w.is_complemented() {
            base.complement()
        } else {
            base
        }
    };
    for (idx, gate) in nl.gates() {
        let fanins: Vec<Wire> = gate.fanins.iter().map(|&w| remap(&map, w)).collect();
        let new = match gate.kind {
            rms_logic::GateKind::And => b.and(fanins[0], fanins[1]),
            rms_logic::GateKind::Or => b.or(fanins[0], fanins[1]),
            rms_logic::GateKind::Xor => b.xor(fanins[0], fanins[1]),
            rms_logic::GateKind::Maj => b.maj(fanins[0], fanins[1], fanins[2]),
            rms_logic::GateKind::Mux => b.mux(fanins[0], fanins[1], fanins[2]),
        };
        map[idx] = new;
    }
    for (name, w) in nl.outputs() {
        b.output(name.clone(), remap(&map, *w));
    }
    b.build()
}

/// First (output, minterm) where two truth-table vectors differ.
fn first_diff(a: &[rms_logic::TruthTable], b: &[rms_logic::TruthTable]) -> (usize, u64) {
    for (o, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            for m in 0..x.num_bits() {
                if x.bit(m) != y.bit(m) {
                    return (o, m);
                }
            }
        }
    }
    (usize::MAX, u64::MAX)
}

/// First (output, bit lane) where two simulation word vectors differ.
fn first_word_diff(a: &[u64], b: &[u64]) -> (usize, usize) {
    for (o, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            return (o, (x ^ y).trailing_zeros() as usize);
        }
    }
    (usize::MAX, 0)
}

/// Decodes minterm `m` into per-input bits.
fn minterm_bits(m: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (m >> i) & 1 == 1).collect()
}

/// Extracts bit `lane` of every input pattern word.
fn lane_bits(pattern: &[u64], lane: usize) -> Vec<bool> {
    pattern.iter().map(|w| (w >> lane) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::NetlistBuilder;

    fn xor_chain(name: &str, names: &[&str]) -> Netlist {
        let mut b = NetlistBuilder::new(name);
        let ins: Vec<Wire> = names.iter().map(|n| b.input(*n)).collect();
        let mut acc = ins[0];
        for &w in &ins[1..] {
            acc = b.xor(acc, w);
        }
        b.output("f", acc);
        b.build()
    }

    #[test]
    fn mode_names_parse() {
        assert_eq!(VerifyMode::from_name("auto"), Some(VerifyMode::Auto));
        assert_eq!(VerifyMode::from_name("SAT"), Some(VerifyMode::Sat));
        assert_eq!(VerifyMode::from_name("sampled"), Some(VerifyMode::Sampled));
        assert_eq!(VerifyMode::from_name("off"), Some(VerifyMode::Off));
        assert_eq!(VerifyMode::from_name("nope"), None);
        assert_eq!(VerifyMode::Sat.to_string(), "sat");
    }

    #[test]
    fn equal_circuits_check_out_in_every_mode() {
        let a = xor_chain("a", &["x", "y", "z"]);
        let b = xor_chain("b", &["x", "y", "z"]);
        assert_eq!(
            check_netlists(&a, &b, VerifyMode::Auto, 1).unwrap(),
            VerifyOutcome::Exhaustive
        );
        assert!(matches!(
            check_netlists(&a, &b, VerifyMode::Sat, 1).unwrap(),
            VerifyOutcome::Proved { .. }
        ));
        assert_eq!(
            check_netlists(&a, &b, VerifyMode::Off, 1).unwrap(),
            VerifyOutcome::Skipped
        );
    }

    #[test]
    fn inputs_align_by_name() {
        let a = xor_chain("a", &["x", "y", "z"]);
        // Same function of the same named inputs, declared in another
        // order: must still be equivalent.
        let mut b = NetlistBuilder::new("b");
        let z = b.input("z");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.xor(x, y);
        let q = b.xor(p, z);
        b.output("f", q);
        let b = b.build();
        assert_eq!(
            check_netlists(&a, &b, VerifyMode::Auto, 1).unwrap(),
            VerifyOutcome::Exhaustive
        );
        assert!(check_netlists(&a, &b, VerifyMode::Sat, 1)
            .unwrap()
            .is_proof());
    }

    #[test]
    fn counterexample_is_concrete() {
        let a = xor_chain("a", &["x", "y", "z"]);
        let mut b = NetlistBuilder::new("b");
        let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
        let p = b.xor(x, y);
        let q = b.or(p, z); // differs from XOR when p & z
        b.output("f", q);
        let bad = b.build();
        for mode in [VerifyMode::Auto, VerifyMode::Sat] {
            match check_netlists(&a, &bad, mode, 1).unwrap() {
                VerifyOutcome::Failed { counterexample, .. } => {
                    let m = counterexample
                        .iter()
                        .enumerate()
                        .fold(0u64, |acc, (i, &v)| acc | ((v as u64) << i));
                    assert_ne!(a.evaluate(m), bad.evaluate(m), "{mode}: {counterexample:?}");
                }
                other => panic!("{mode}: expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn wide_circuits_get_proved_not_sampled() {
        let names: Vec<String> = (0..20).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let a = xor_chain("a", &refs);
        let b = xor_chain("b", &refs);
        assert!(matches!(
            check_netlists(&a, &b, VerifyMode::Auto, 1).unwrap(),
            VerifyOutcome::Proved { .. }
        ));
        assert!(matches!(
            check_netlists(&a, &b, VerifyMode::Sampled, 1).unwrap(),
            VerifyOutcome::Sampled { .. }
        ));
    }

    #[test]
    fn output_count_mismatch_is_a_clean_failure() {
        let a = xor_chain("a", &["x", "y"]);
        let mut b = NetlistBuilder::new("b");
        let (x, y) = (b.input("x"), b.input("y"));
        let o = b.xor(x, y);
        b.output("f", o);
        b.output("g", x);
        let b = b.build();
        match check_netlists(&a, &b, VerifyMode::Auto, 1).unwrap() {
            VerifyOutcome::Failed {
                what,
                counterexample,
            } => {
                assert!(what.contains("output counts"), "{what}");
                assert!(counterexample.is_empty());
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn input_count_mismatch_is_an_error() {
        let a = xor_chain("a", &["x", "y"]);
        let b = xor_chain("b", &["x", "y", "z"]);
        assert!(matches!(
            check_netlists(&a, &b, VerifyMode::Auto, 1),
            Err(FlowError::Unsupported(_))
        ));
    }

    #[test]
    fn assignment_formatting() {
        let names: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(format_assignment(&names, &[true, false]), "a=1 b=0");
        assert!(format_assignment(&names, &[]).contains("structural"));
    }
}
