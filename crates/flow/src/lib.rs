//! The unified synthesis pipeline: one composable API from circuit text
//! to a verified RRAM program.
//!
//! The other crates in this workspace each own one layer of the paper's
//! flow — Boolean functions ([`rms_logic`]), majority-inverter graphs and
//! the optimization algorithms ([`rms_core`]), the cut-based NPN
//! rewriting engine ([`rms_cut`]), the RRAM machine and compilers
//! ([`rms_rram`]), the SAT-based equivalence checker ([`rms_sat`]), and
//! the AIG/BDD baselines ([`rms_aig`], [`rms_bdd`]). This crate chains
//! them:
//!
//! ```text
//! BLIF / PLA / Verilog / expr / truth table   (input::load_path, parse_str)
//!        │
//!        ▼
//! Netlist ──frontend──► Mig                (Pipeline::frontend: direct / aig / bdd)
//!        │
//!        ▼
//! optimizer: Algs. 1–4 + cut rewriting     (Pipeline::algorithm, effort)
//!        │
//!        ▼
//! (R, S) costing — Table I                 (rms_core::cost)
//!        │
//!        ├──► level-parallel array program (rms_rram::compile)
//!        └──► serial PLiM stream           (rms_rram::plim)
//!        │
//!        ▼
//! tiered verification + report             (verify: exhaustive / SAT proof /
//!                                           sampled; report: text / JSON)
//! ```
//!
//! The `rms` command-line binary (in the workspace root package) and the
//! `rms-bench` reproduction harness are both thin wrappers over
//! [`Pipeline`] and the [`par`] thread pool.
//!
//! # Example
//!
//! ```
//! use rms_flow::{Pipeline, input::InputFormat};
//! use rms_core::{Algorithm, Realization};
//!
//! # fn main() -> Result<(), rms_flow::FlowError> {
//! let out = Pipeline::from_str(InputFormat::Expr, "f = maj(a, b, c) ^ d", "demo")?
//!     .algorithm(Algorithm::Steps)
//!     .realization(Realization::Maj)
//!     .effort(10)
//!     .run()?;
//! println!("{}", rms_flow::report::render_text(&out.report));
//! assert!(out.report.cost.steps > 0);
//! # Ok(())
//! # }
//! ```

//!
//! `ARCHITECTURE.md` at the repository root documents the stages in
//! prose; `README.md` has the CLI quickstart.

pub mod error;
pub mod input;
pub mod par;
pub mod pipeline;
pub mod report;
pub mod verify;

pub use error::FlowError;
pub use input::InputFormat;
pub use pipeline::{
    optimize_cost, run_algorithm, run_algorithm_engine, FlowOutput, FlowReport, Frontend, Pipeline,
    StageTimings, DEFAULT_VERIFY_SEED,
};
pub use report::{escape_json, render_json, render_text, REPORT_SCHEMA};
pub use rms_cut::Engine;
pub use verify::{check_netlists, format_assignment, VerifyMode, VerifyOutcome};
