//! Circuit input loading for the pipeline: BLIF, PLA, structural
//! Verilog, Boolean expressions, raw truth tables, and the embedded
//! benchmark suites.
//!
//! Formats are chosen by file extension and fall back to content
//! sniffing, so `rms run --input adder.blif` and `rms run --input spec.tt`
//! both do the right thing without a `--format` flag.
//!
//! | Format | Extensions | Shape |
//! |---|---|---|
//! | [`InputFormat::Blif`] | `.blif` | `.model/.inputs/.outputs/.names` sections |
//! | [`InputFormat::Pla`]  | `.pla`  | Espresso `.i/.o/.p` two-level covers |
//! | [`InputFormat::Verilog`] | `.v`, `.sv` | gate-level `module`/`assign` subset |
//! | [`InputFormat::Expr`] | `.expr`, `.eqn` | one `name = expression` per line |
//! | [`InputFormat::TruthTable`] | `.tt` | one `name = bits` per line, hex (`0xe8`) or binary |
//! | [`InputFormat::Aiger`] | `.aig`, `.aag` | AIGER and-inverter graphs, binary or ASCII |
//!
//! Binary AIGER is not valid UTF-8, so files and stdin are loaded as
//! bytes first ([`load_path`], [`load_stdin`], [`sniff_bytes`]) and only
//! decoded to text for the text formats.
//!
//! Truth-table bit strings follow the ABC convention also used by
//! [`rms_logic::tt::TruthTable`]'s `Display`: the **rightmost** character
//! is minterm 0, so `0xe8` is the majority of three inputs.

use crate::error::FlowError;
use rms_logic::expr::{Expr, ExprNode};
use rms_logic::netlist::{Netlist, NetlistBuilder, Wire};
use rms_logic::tt::{TruthTable, MAX_VARS};
use rms_logic::{aiger, bench_suite, blif, pla, synth, verilog};
use std::collections::BTreeMap;
use std::path::Path;

/// A circuit description format the pipeline can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// Berkeley Logic Interchange Format (combinational subset).
    Blif,
    /// Espresso PLA two-level covers.
    Pla,
    /// Structural gate-level Verilog (`module`/`wire`/`assign` subset).
    Verilog,
    /// Boolean expression lines (`f = maj(a, b, c) ^ !d`).
    Expr,
    /// Raw truth tables (`f = 0xe8`).
    TruthTable,
    /// AIGER and-inverter graphs, binary (`aig`) or ASCII (`aag`).
    Aiger,
}

impl InputFormat {
    /// All formats, for help messages.
    pub const ALL: [InputFormat; 6] = [
        InputFormat::Blif,
        InputFormat::Pla,
        InputFormat::Verilog,
        InputFormat::Expr,
        InputFormat::TruthTable,
        InputFormat::Aiger,
    ];

    /// Guesses the format from a file extension.
    pub fn from_extension(path: &Path) -> Option<InputFormat> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "blif" => Some(InputFormat::Blif),
            "pla" => Some(InputFormat::Pla),
            "v" | "sv" | "verilog" => Some(InputFormat::Verilog),
            "expr" | "eqn" | "bool" => Some(InputFormat::Expr),
            "tt" | "truth" => Some(InputFormat::TruthTable),
            "aig" | "aag" | "aiger" => Some(InputFormat::Aiger),
            _ => None,
        }
    }

    /// Parses a format name as given on the command line.
    pub fn from_name(name: &str) -> Option<InputFormat> {
        match name.to_ascii_lowercase().as_str() {
            "blif" => Some(InputFormat::Blif),
            "pla" => Some(InputFormat::Pla),
            "verilog" | "v" => Some(InputFormat::Verilog),
            "expr" | "expression" | "eqn" => Some(InputFormat::Expr),
            "tt" | "truth-table" | "truthtable" => Some(InputFormat::TruthTable),
            "aiger" | "aig" | "aag" => Some(InputFormat::Aiger),
            _ => None,
        }
    }
}

impl std::fmt::Display for InputFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputFormat::Blif => write!(f, "blif"),
            InputFormat::Pla => write!(f, "pla"),
            InputFormat::Verilog => write!(f, "verilog"),
            InputFormat::Expr => write!(f, "expr"),
            InputFormat::TruthTable => write!(f, "tt"),
            InputFormat::Aiger => write!(f, "aiger"),
        }
    }
}

/// Guesses the format of `text` from its first meaningful line, or
/// `None` when the input is empty or contains only comments/whitespace.
///
/// Blank lines, CRLF endings, and leading comments (`#`, `//`, and
/// `/* … */` blocks) are skipped before classifying, so a BLIF file
/// that opens with a comment banner still sniffs as BLIF. BLIF starts
/// with dot-directives like `.model`; PLA with `.i`/`.o`; Verilog with
/// the `module` keyword; AIGER with an `aag` header (binary `aig` never
/// reaches text sniffing — see [`sniff_bytes`]); truth-table files
/// contain only bit strings on the value side; anything else is treated
/// as an expression file.
pub fn sniff_format(text: &str) -> Option<InputFormat> {
    let mut in_block_comment = false;
    for raw in text.lines() {
        let mut line = raw.trim_end_matches('\r');
        if in_block_comment {
            match line.find("*/") {
                Some(end) => {
                    in_block_comment = false;
                    line = &line[end + 2..];
                }
                None => continue,
            }
        }
        let mut line = line.split('#').next().unwrap_or("").trim();
        // Strip leading `/* … */` blocks and `//` line comments; an
        // unterminated block swallows the following lines.
        loop {
            if let Some(rest) = line.strip_prefix("/*") {
                match rest.find("*/") {
                    Some(end) => line = rest[end + 2..].trim_start(),
                    None => {
                        in_block_comment = true;
                        line = "";
                    }
                }
                continue;
            }
            if line.starts_with("//") {
                line = "";
            }
            break;
        }
        if line.is_empty() {
            continue;
        }
        if let Some(word) = line.split_whitespace().next() {
            match word {
                ".model" | ".inputs" | ".outputs" | ".names" | ".exdc" => {
                    return Some(InputFormat::Blif)
                }
                ".i" | ".o" | ".p" | ".ilb" | ".ob" | ".type" => return Some(InputFormat::Pla),
                "module" => return Some(InputFormat::Verilog),
                "aag" | "aig" => return Some(InputFormat::Aiger),
                _ => {}
            }
        }
        // A value line: `bits` or `name = bits`.
        let value = line.rsplit('=').next().unwrap_or(line).trim();
        let is_bits = value.strip_prefix("0x").map_or_else(
            || !value.is_empty() && value.chars().all(|c| c == '0' || c == '1'),
            |hex| !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit()),
        );
        return Some(if is_bits && (value.len() > 1 || line.contains('=')) {
            InputFormat::TruthTable
        } else {
            InputFormat::Expr
        });
    }
    None
}

/// Byte-level format sniff: detects binary AIGER by its magic word, and
/// otherwise decodes UTF-8 and defers to [`sniff_format`].
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when no circuit content is found
/// and [`FlowError::Parse`] when the bytes are neither binary AIGER nor
/// valid UTF-8 text.
pub fn sniff_bytes(src: &[u8]) -> Result<InputFormat, FlowError> {
    if aiger::looks_binary(src) {
        return Ok(InputFormat::Aiger);
    }
    let text = std::str::from_utf8(src).map_err(|_| {
        FlowError::Parse(rms_logic::ParseCircuitError::new(
            "input is neither binary AIGER nor UTF-8 text",
        ))
    })?;
    sniff_format(text).ok_or(FlowError::EmptyInput)
}

/// Loads a circuit from a file, choosing the format by extension (with a
/// content sniff as fallback).
///
/// # Errors
///
/// Returns [`FlowError::Io`] when the file cannot be read and
/// [`FlowError::Parse`] when its contents are malformed.
pub fn load_path(path: &Path) -> Result<Netlist, FlowError> {
    let bytes = std::fs::read(path).map_err(|e| FlowError::io(path.display().to_string(), e))?;
    let format = match InputFormat::from_extension(path) {
        Some(f) => f,
        None => sniff_bytes(&bytes)?,
    };
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    parse_bytes(format, &bytes, name)
}

/// Parses circuit text in an explicit format.
///
/// `name` is used for formats whose syntax carries no model name
/// (expressions and truth tables).
///
/// # Errors
///
/// Returns [`FlowError::Parse`] when the text is malformed.
pub fn parse_str(format: InputFormat, text: &str, name: &str) -> Result<Netlist, FlowError> {
    match format {
        InputFormat::Blif => blif::parse(text).map_err(FlowError::Parse),
        InputFormat::Pla => pla::parse(text).map_err(FlowError::Parse),
        InputFormat::Verilog => verilog::parse(text).map_err(FlowError::Parse),
        InputFormat::Expr => parse_expr_file(text, name),
        InputFormat::TruthTable => parse_tt_file(text, name),
        InputFormat::Aiger => aiger::parse_bytes(text.as_bytes()).map_err(FlowError::Parse),
    }
}

/// Parses raw circuit bytes in an explicit format: the binary-capable
/// sibling of [`parse_str`] (binary AIGER is not UTF-8).
///
/// # Errors
///
/// Returns [`FlowError::Parse`] when the bytes are malformed for the
/// format, including when a text format receives non-UTF-8 bytes.
pub fn parse_bytes(format: InputFormat, bytes: &[u8], name: &str) -> Result<Netlist, FlowError> {
    if format == InputFormat::Aiger {
        return aiger::parse_bytes(bytes).map_err(FlowError::Parse);
    }
    let text = std::str::from_utf8(bytes).map_err(|_| {
        FlowError::Parse(rms_logic::ParseCircuitError::new(format!(
            "{format} input is not valid UTF-8 text"
        )))
    })?;
    parse_str(format, text, name)
}

/// Parses circuit text whose format is discovered by [`sniff_format`] —
/// the entry point shared by `--input -` (circuits piped on stdin) and
/// the `rms serve` request path, where no file extension exists.
///
/// # Errors
///
/// Returns [`FlowError::EmptyInput`] when the text contains no circuit
/// and [`FlowError::Parse`] when it is malformed for the sniffed
/// format.
pub fn parse_sniffed(text: &str, name: &str) -> Result<Netlist, FlowError> {
    let format = sniff_format(text).ok_or(FlowError::EmptyInput)?;
    parse_str(format, text, name)
}

/// Reads a whole circuit from standard input and parses it, sniffing the
/// format unless `format` pins it — the implementation of the `-` input
/// path of `rms run`/`optimize`/`compile`/`verify`.
///
/// # Errors
///
/// Returns [`FlowError::Io`] when stdin cannot be read and
/// [`FlowError::Parse`] when its contents are malformed.
pub fn load_stdin(format: Option<InputFormat>) -> Result<Netlist, FlowError> {
    let mut bytes = Vec::new();
    std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut bytes)
        .map_err(|e| FlowError::io("<stdin>", e))?;
    let format = match format {
        Some(f) => f,
        None => sniff_bytes(&bytes)?,
    };
    parse_bytes(format, &bytes, "stdin")
}

/// Loads an embedded benchmark by name: the paper suites of
/// [`rms_logic::bench_suite`] plus the generated large suite of
/// [`rms_logic::large_suite`] (`xl_`-prefixed names).
///
/// # Errors
///
/// Returns [`FlowError::UnknownBenchmark`] listing valid names when the
/// benchmark does not exist.
pub fn load_bench(name: &str) -> Result<Netlist, FlowError> {
    bench_suite::build(name)
        .or_else(|| rms_logic::large_suite::build(name))
        .ok_or_else(|| FlowError::UnknownBenchmark(name.to_string()))
}

/// Parses an expression file: one `output = expression` per line.
///
/// Plain expression lines without `=` get synthesized output names `f0`,
/// `f1`, … Variables are shared between lines by name, in order of first
/// appearance across the whole file.
fn parse_expr_file(text: &str, name: &str) -> Result<Netlist, FlowError> {
    // Pass 1: parse every line, collecting the union of variables in
    // first-appearance order (the builder requires all inputs to be
    // declared before the first gate).
    let mut parsed: Vec<(String, Expr)> = Vec::new();
    let mut order: Vec<String> = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (out_name, body) = match line.split_once('=') {
            Some((lhs, rhs)) if !lhs.trim().is_empty() && !lhs.contains(['(', '!', '&']) => {
                (lhs.trim().to_string(), rhs)
            }
            _ => (format!("f{}", parsed.len()), line),
        };
        let expr = Expr::parse(body).map_err(|e| {
            FlowError::Parse(rms_logic::ParseCircuitError::at_line(
                lineno + 1,
                e.to_string(),
            ))
        })?;
        for v in expr.variables() {
            if !seen.contains_key(v) {
                seen.insert(v.clone(), order.len());
                order.push(v.clone());
            }
        }
        parsed.push((out_name, expr));
    }
    if parsed.is_empty() {
        return Err(FlowError::Parse(rms_logic::ParseCircuitError::new(
            "expression file defines no outputs",
        )));
    }
    // Pass 2: declare the inputs, then lower each expression.
    let mut b = NetlistBuilder::new(name);
    let input_wires: Vec<Wire> = order.iter().map(|v| b.input(v.clone())).collect();
    let mut outputs: Vec<(String, Wire)> = Vec::new();
    for (out_name, expr) in parsed {
        // Map this expression's local variable indices to shared inputs.
        let wires: Vec<Wire> = expr
            .variables()
            .iter()
            .map(|v| input_wires[seen[v]])
            .collect();
        let w = lower_expr(expr.root(), &mut b, &wires);
        outputs.push((out_name, w));
    }
    for (n, w) in outputs {
        b.output(n, w);
    }
    Ok(b.build())
}

/// Recursively lowers an expression tree into netlist gates.
fn lower_expr(node: &ExprNode, b: &mut NetlistBuilder, vars: &[Wire]) -> Wire {
    match node {
        ExprNode::Const(v) => {
            if *v {
                b.const1()
            } else {
                b.const0()
            }
        }
        ExprNode::Var(i) => vars[*i],
        ExprNode::Not(a) => {
            let w = lower_expr(a, b, vars);
            b.not(w)
        }
        ExprNode::And(x, y) => {
            let (x, y) = (lower_expr(x, b, vars), lower_expr(y, b, vars));
            b.and(x, y)
        }
        ExprNode::Or(x, y) => {
            let (x, y) = (lower_expr(x, b, vars), lower_expr(y, b, vars));
            b.or(x, y)
        }
        ExprNode::Xor(x, y) => {
            let (x, y) = (lower_expr(x, b, vars), lower_expr(y, b, vars));
            b.xor(x, y)
        }
        ExprNode::Maj(x, y, z) => {
            let (x, y, z) = (
                lower_expr(x, b, vars),
                lower_expr(y, b, vars),
                lower_expr(z, b, vars),
            );
            b.maj(x, y, z)
        }
        ExprNode::Mux(s, t, e) => {
            let (s, t, e) = (
                lower_expr(s, b, vars),
                lower_expr(t, b, vars),
                lower_expr(e, b, vars),
            );
            b.mux(s, t, e)
        }
    }
}

/// Parses a truth-table file: one `name = bits` (or bare `bits`) line per
/// output, all over the same variable count.
fn parse_tt_file(text: &str, name: &str) -> Result<Netlist, FlowError> {
    let mut tts: Vec<TruthTable> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let value = line.rsplit('=').next().unwrap_or(line).trim();
        let tt = parse_tt_bits(value)
            .map_err(|m| FlowError::Parse(rms_logic::ParseCircuitError::at_line(lineno + 1, m)))?;
        if let Some(first) = tts.first() {
            if first.num_vars() != tt.num_vars() {
                return Err(FlowError::Parse(rms_logic::ParseCircuitError::at_line(
                    lineno + 1,
                    format!(
                        "table has {} variables but earlier lines have {}",
                        tt.num_vars(),
                        first.num_vars()
                    ),
                )));
            }
        }
        tts.push(tt);
    }
    if tts.is_empty() {
        return Err(FlowError::Parse(rms_logic::ParseCircuitError::new(
            "truth-table file defines no outputs",
        )));
    }
    Ok(synth::sop_netlist(name, &tts))
}

/// Parses one truth-table bit string (hex `0x…` or binary), rightmost
/// character = minterm 0.
fn parse_tt_bits(value: &str) -> Result<TruthTable, String> {
    let (bits_per_char, digits) = match value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        Some(hex) => (4u64, hex),
        None => (1, value),
    };
    if digits.is_empty() {
        return Err("empty bit string".into());
    }
    let minterms = digits.len() as u64 * bits_per_char;
    if !minterms.is_power_of_two() || minterms < 2 {
        return Err(format!(
            "bit string covers {minterms} minterms; need a power of two >= 2"
        ));
    }
    let num_vars = minterms.trailing_zeros() as usize;
    if num_vars > MAX_VARS {
        return Err(format!(
            "{num_vars} variables exceed the {MAX_VARS}-variable truth-table limit"
        ));
    }
    let mut values = Vec::with_capacity(minterms as usize);
    for c in digits.chars().rev() {
        let nibble = c
            .to_digit(if bits_per_char == 4 { 16 } else { 2 })
            .ok_or_else(|| format!("invalid digit {c:?}"))?;
        for bit in 0..bits_per_char {
            values.push(nibble >> bit & 1 == 1);
        }
    }
    Ok(TruthTable::from_fn(num_vars, |m| values[m as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_detection() {
        assert_eq!(
            InputFormat::from_extension(Path::new("a/b/c.BLIF")),
            Some(InputFormat::Blif)
        );
        assert_eq!(
            InputFormat::from_extension(Path::new("f.tt")),
            Some(InputFormat::TruthTable)
        );
        assert_eq!(InputFormat::from_extension(Path::new("f.xyz")), None);
        assert_eq!(InputFormat::from_name("PLA"), Some(InputFormat::Pla));
    }

    #[test]
    fn sniffing() {
        assert_eq!(
            sniff_format(".model top\n.inputs a\n"),
            Some(InputFormat::Blif)
        );
        assert_eq!(sniff_format("# c\n.i 3\n.o 1\n"), Some(InputFormat::Pla));
        assert_eq!(sniff_format("f = 0xe8\n"), Some(InputFormat::TruthTable));
        assert_eq!(sniff_format("maj(a, b, c)\n"), Some(InputFormat::Expr));
        assert_eq!(
            sniff_format("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n"),
            Some(InputFormat::Aiger)
        );
    }

    #[test]
    fn sniffing_skips_leading_comments_blank_lines_and_crlf() {
        // Regression: a comment banner or CRLF endings before the first
        // directive used to misclassify the input.
        assert_eq!(
            sniff_format("\r\n# banner\r\n.model top\r\n.inputs a\r\n"),
            Some(InputFormat::Blif)
        );
        assert_eq!(
            sniff_format("// tool banner\n\n.i 3\n.o 1\n"),
            Some(InputFormat::Pla)
        );
        assert_eq!(
            sniff_format("/* multi\n   line\n   banner */\n.model m\n"),
            Some(InputFormat::Blif)
        );
        assert_eq!(
            sniff_format("/* inline */ .model m\n"),
            Some(InputFormat::Blif)
        );
        // Verilog is still detected by its module keyword, with or
        // without a leading comment.
        assert_eq!(
            sniff_format("// generated\nmodule t(a, y);\n"),
            Some(InputFormat::Verilog)
        );
    }

    #[test]
    fn sniffing_empty_input_is_a_dedicated_error() {
        assert_eq!(sniff_format(""), None);
        assert_eq!(sniff_format("\r\n\r\n"), None);
        assert_eq!(sniff_format("# only comments\n// here\n"), None);
        assert_eq!(sniff_format("/* unterminated\nblock"), None);
        let err = parse_sniffed("", "x").unwrap_err();
        assert!(matches!(err, FlowError::EmptyInput), "{err}");
        assert!(err.to_string().contains("empty input"), "{err}");
        let err = sniff_bytes(b"# nothing here\n").unwrap_err();
        assert!(matches!(err, FlowError::EmptyInput), "{err}");
    }

    #[test]
    fn byte_sniffing_detects_binary_aiger() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and(x, y);
        b.output("f", g);
        let nl = b.build();
        let binary = rms_logic::aiger::write_binary(&nl);
        assert_eq!(sniff_bytes(&binary).unwrap(), InputFormat::Aiger);
        let back = parse_bytes(InputFormat::Aiger, &binary, "t").unwrap();
        assert_eq!(back.truth_tables(), nl.truth_tables());
        // Text formats reject non-UTF-8 bytes with a parse error.
        assert!(parse_bytes(InputFormat::Blif, &binary, "t").is_err());
        // Arbitrary non-UTF-8 garbage is neither AIGER nor text.
        assert!(sniff_bytes(&[0xff, 0xfe, 0x00]).is_err());
    }

    #[test]
    fn expr_file_shares_variables() {
        let nl = parse_str(InputFormat::Expr, "f = a & b\ng = a ^ c\n", "two").unwrap();
        assert_eq!(nl.num_inputs(), 3);
        assert_eq!(nl.num_outputs(), 2);
        // minterm bit order: a = bit 0, b = bit 1, c = bit 2.
        assert_eq!(nl.evaluate(0b011), vec![true, true]);
        assert_eq!(nl.evaluate(0b101), vec![false, false]);
    }

    #[test]
    fn truth_table_majority() {
        let nl = parse_str(InputFormat::TruthTable, "f = 0xe8\n", "m").unwrap();
        assert_eq!(nl.num_inputs(), 3);
        let tts = nl.truth_tables();
        assert_eq!(tts[0], TruthTable::from_fn(3, |m| m.count_ones() >= 2));
    }

    #[test]
    fn truth_table_binary_and_errors() {
        let nl = parse_str(InputFormat::TruthTable, "10\n", "buf").unwrap();
        assert_eq!(nl.num_inputs(), 1);
        assert!(parse_str(InputFormat::TruthTable, "101\n", "bad").is_err());
        assert!(parse_str(InputFormat::TruthTable, "f = 0xe8\ng = 10\n", "mix").is_err());
        assert!(parse_str(InputFormat::TruthTable, "", "empty").is_err());
    }

    #[test]
    fn blif_and_pla_delegate() {
        let blif_src = ".model t\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n";
        let nl = parse_str(InputFormat::Blif, blif_src, "ignored").unwrap();
        assert_eq!(nl.num_inputs(), 2);
        assert!(parse_str(InputFormat::Pla, "garbage", "x").is_err());
    }

    #[test]
    fn verilog_input_round_trips_through_the_emitter() {
        let blif_src = ".model rt\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n";
        let nl = parse_str(InputFormat::Blif, blif_src, "rt").unwrap();
        let text = rms_logic::verilog::write(&nl);
        assert_eq!(sniff_format(&text), Some(InputFormat::Verilog));
        let back = parse_str(InputFormat::Verilog, &text, "rt").unwrap();
        assert_eq!(back.truth_tables(), nl.truth_tables());
    }

    #[test]
    fn embedded_benchmarks() {
        assert!(load_bench("rd53_f2").is_ok());
        let err = load_bench("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }
}
