//! Re-export of the scoped-thread pool, which moved to [`rms_core::par`]
//! so the cut engine's windowed round can fan out on the same pool
//! without a dependency cycle. Flow-level callers keep their
//! `rms_flow::par::...` paths.

pub use rms_core::par::{num_threads, par_map, par_map_threads};
