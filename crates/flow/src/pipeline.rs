//! The end-to-end synthesis pipeline: netlist → MIG → optimization →
//! (R, S) costing → RRAM compilation → machine-level verification.
//!
//! [`Pipeline`] is a builder over the stages the paper describes and the
//! other crates implement; [`Pipeline::run`] executes them in order and
//! returns both the structured [`FlowReport`] (what the CLI prints as text
//! or JSON) and the produced artifacts (optimized [`Mig`], compiled
//! programs) for further processing.
//!
//! # Example
//!
//! ```
//! use rms_flow::{Pipeline, input::InputFormat};
//! use rms_core::{Algorithm, Realization};
//!
//! # fn main() -> Result<(), rms_flow::FlowError> {
//! let blif = ".model t\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n";
//! let out = Pipeline::from_str(InputFormat::Blif, blif, "t")?
//!     .algorithm(Algorithm::RramCosts)
//!     .realization(Realization::Maj)
//!     .effort(10)
//!     .run()?;
//! assert!(out.report.verify.passed());
//! assert_eq!(out.report.cost.steps, out.array.program.num_steps());
//! # Ok(())
//! # }
//! ```

use crate::error::FlowError;
use crate::input::{self, InputFormat};
use crate::verify::{self, format_assignment};
pub use crate::verify::{VerifyMode, VerifyOutcome};
use rms_aig::Aig;
use rms_core::cost::{MigStats, Realization, RramCost};
use rms_core::opt::{Algorithm, OptOptions, OptStats};
use rms_core::Mig;
use rms_cut::Engine;
use rms_logic::netlist::Netlist;
use rms_logic::synth;
use rms_logic::tt::MAX_VARS;
use rms_rram::compile::{compile, CompiledCircuit};
use rms_rram::plim::{compile_plim, PlimCircuit};
use std::path::Path;
use std::time::{Duration, Instant};

/// How the initial MIG is seeded from the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// Convert the netlist gates one-to-one into majority nodes.
    #[default]
    Direct,
    /// Restructure through a depth-balanced AIG first (useful when the
    /// input is deeply serial two-level logic).
    Aig,
    /// Restructure through a shared Shannon/mux decomposition (the shape a
    /// BDD front end produces). Limited to circuits whose truth tables fit
    /// in memory.
    Bdd,
}

impl Frontend {
    /// Parses a frontend name as given on the command line.
    pub fn from_name(name: &str) -> Option<Frontend> {
        match name.to_ascii_lowercase().as_str() {
            "direct" | "mig" => Some(Frontend::Direct),
            "aig" => Some(Frontend::Aig),
            "bdd" | "shannon" => Some(Frontend::Bdd),
            _ => None,
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Frontend::Direct => write!(f, "direct"),
            Frontend::Aig => write!(f, "aig"),
            Frontend::Bdd => write!(f, "bdd"),
        }
    }
}

/// Default seed of the sampled-verification pattern RNG
/// ([`Pipeline::seed`] overrides it).
pub const DEFAULT_VERIFY_SEED: u64 = 0x5eed;

/// The BDD frontend materializes truth tables; cap the width so a typo
/// cannot allocate 2^n bits.
const BDD_FRONTEND_MAX_VARS: usize = 18;

/// Wall-clock duration of each pipeline stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// Reading and parsing the input (zero when built from a netlist).
    pub parse: Duration,
    /// Frontend construction of the initial MIG.
    pub construct: Duration,
    /// The optimization algorithm.
    pub optimize: Duration,
    /// Level-parallel and PLiM compilation.
    pub compile: Duration,
    /// Machine-level verification.
    pub verify: Duration,
}

/// The structured result of a pipeline run — everything the text and JSON
/// reports render.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Circuit name (model name or file stem).
    pub name: String,
    /// Primary input count.
    pub num_inputs: usize,
    /// Primary output count.
    pub num_outputs: usize,
    /// Gate count of the source netlist.
    pub source_gates: usize,
    /// Which optimization algorithm ran.
    pub algorithm: Algorithm,
    /// Which majority-gate realization was targeted.
    pub realization: Realization,
    /// Optimization effort (cycles).
    pub effort: usize,
    /// How the MIG was seeded.
    pub frontend: Frontend,
    /// Statistics of the MIG before optimization.
    pub initial: MigStats,
    /// Statistics of the MIG after optimization.
    pub optimized: MigStats,
    /// Optimizer run statistics (cycles, passes, cut rewrites).
    pub opt: OptStats,
    /// Table I metrics of the optimized MIG for [`FlowReport::realization`].
    pub cost: RramCost,
    /// Steps of the compiled level-parallel program (equals `cost.steps`
    /// except for the degenerate all-pass-through case).
    pub array_steps: u64,
    /// Physical peak device count of the level-parallel program.
    pub array_physical_rrams: u64,
    /// Instruction count of the serial PLiM stream.
    pub plim_instructions: u64,
    /// Peak live memory cells of the PLiM stream.
    pub plim_cells: u64,
    /// How the result was verified.
    pub verify: VerifyOutcome,
    /// Which verification policy was requested.
    pub verify_mode: VerifyMode,
    /// Seed of the sampled-verification pattern RNG.
    pub verify_seed: u64,
    /// Which cut-rewriting engine actually ran. [`Algorithm::Cut`]
    /// dispatches on the requested engine; [`Algorithm::CutRram`]'s
    /// hybrid round is implemented on the rebuild driver only (reported
    /// as [`Engine::Rebuild`] here regardless of the request), and the
    /// paper's Algs. 1–4 are engine-independent.
    pub engine: Engine,
    /// Per-stage wall-clock times.
    pub timings: StageTimings,
}

/// Artifacts of a pipeline run: the report plus every intermediate worth
/// keeping.
#[derive(Debug)]
pub struct FlowOutput {
    /// The structured report.
    pub report: FlowReport,
    /// The source netlist (reference semantics).
    pub netlist: Netlist,
    /// The optimized MIG.
    pub mig: Mig,
    /// The compiled level-parallel crossbar program.
    pub array: CompiledCircuit,
    /// The compiled serial PLiM instruction stream.
    pub plim: PlimCircuit,
}

/// Builder for one end-to-end synthesis run.
#[derive(Debug, Clone)]
pub struct Pipeline {
    netlist: Netlist,
    algorithm: Algorithm,
    realization: Realization,
    options: OptOptions,
    frontend: Frontend,
    verify: VerifyMode,
    seed: u64,
    engine: Engine,
    best_effort: bool,
    parse_time: Duration,
}

impl Pipeline {
    /// Starts a pipeline from an already-parsed netlist.
    pub fn new(netlist: Netlist) -> Self {
        Pipeline {
            netlist,
            algorithm: Algorithm::RramCosts,
            realization: Realization::Maj,
            options: OptOptions::paper(),
            frontend: Frontend::Direct,
            verify: VerifyMode::Auto,
            seed: DEFAULT_VERIFY_SEED,
            engine: Engine::default(),
            best_effort: false,
            parse_time: Duration::ZERO,
        }
    }

    /// Starts a pipeline by loading `path` (format chosen by extension,
    /// falling back to content sniffing).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Io`] or [`FlowError::Parse`].
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, FlowError> {
        let t0 = Instant::now();
        let netlist = input::load_path(path.as_ref())?;
        let mut p = Pipeline::new(netlist);
        p.parse_time = t0.elapsed();
        Ok(p)
    }

    /// Starts a pipeline from circuit text in an explicit format.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] when the text is malformed.
    pub fn from_str(format: InputFormat, text: &str, name: &str) -> Result<Self, FlowError> {
        let t0 = Instant::now();
        let netlist = input::parse_str(format, text, name)?;
        let mut p = Pipeline::new(netlist);
        p.parse_time = t0.elapsed();
        Ok(p)
    }

    /// Starts a pipeline from raw circuit bytes in an explicit format
    /// (the only constructor that accepts **binary** AIGER).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Parse`] when the bytes are malformed.
    pub fn from_bytes(format: InputFormat, bytes: &[u8], name: &str) -> Result<Self, FlowError> {
        let t0 = Instant::now();
        let netlist = input::parse_bytes(format, bytes, name)?;
        let mut p = Pipeline::new(netlist);
        p.parse_time = t0.elapsed();
        Ok(p)
    }

    /// Starts a pipeline from an embedded benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownBenchmark`] for unknown names.
    pub fn from_bench(name: &str) -> Result<Self, FlowError> {
        Ok(Pipeline::new(input::load_bench(name)?))
    }

    /// Selects the optimization algorithm (default: Alg. 3, `RramCosts`).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the majority-gate realization (default: MAJ).
    pub fn realization(mut self, realization: Realization) -> Self {
        self.realization = realization;
        self
    }

    /// Replaces the full optimizer options.
    pub fn options(mut self, options: OptOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the optimization effort (cycles; the paper uses 40).
    pub fn effort(mut self, effort: usize) -> Self {
        self.options.effort = effort;
        self
    }

    /// Bounds the incremental engine's resident cut cache (lists, not
    /// bytes; see [`rms_core::opt::DEFAULT_CUT_CACHE_BOUND`]).
    pub fn cut_cache_bound(mut self, bound: usize) -> Self {
        self.options.cut_cache_bound = bound;
        self
    }

    /// Sets the worker count of the partition-parallel rewrite round
    /// (0 = auto; see [`rms_core::opt::OptOptions::jobs`]). Applies
    /// *within* a single circuit, on graphs at or above
    /// [`Pipeline::par_threshold`] gates; the result is bit-identical
    /// for every value.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = jobs;
        self
    }

    /// Sets the gate-count threshold above which the cut script uses the
    /// partition-parallel windowed round (default:
    /// [`rms_core::opt::DEFAULT_PAR_THRESHOLD`]; `usize::MAX` disables).
    pub fn par_threshold(mut self, threshold: usize) -> Self {
        self.options.par_threshold = threshold;
        self
    }

    /// Selects how the initial MIG is seeded (default: direct).
    pub fn frontend(mut self, frontend: Frontend) -> Self {
        self.frontend = frontend;
        self
    }

    /// Enables or disables machine-level verification (default: enabled
    /// with the tiered [`VerifyMode::Auto`] policy).
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = if verify {
            VerifyMode::Auto
        } else {
            VerifyMode::Off
        };
        self
    }

    /// Selects the verification policy: tiered (exhaustive below the
    /// width cutoff, SAT proof above), forced SAT proof, sampled
    /// (explicit opt-out of formal checking), or off.
    pub fn verify_mode(mut self, mode: VerifyMode) -> Self {
        self.verify = mode;
        self
    }

    /// Sets the seed of the sampled-verification pattern RNG (default:
    /// [`DEFAULT_VERIFY_SEED`]), so a failing wide-circuit verification
    /// can be reproduced — and varied — across runs. Exhaustive
    /// verification ignores the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the cut-rewriting engine (default: the in-place
    /// incremental engine). [`Engine::Rebuild`] is the pre-incremental
    /// baseline, [`Engine::FromScratch`] the differential reference —
    /// both produce functionally identical circuits.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a cooperative-cancellation token (usually one built with
    /// [`rms_core::CancelToken::with_deadline`]). The optimizer polls it
    /// at deterministic checkpoint boundaries; once it trips, the run
    /// either fails with [`FlowError::Timeout`] or — under
    /// [`Pipeline::best_effort`] — finishes from the best completed
    /// iterate. Runs that complete are bit-identical with or without a
    /// token.
    pub fn cancel(mut self, cancel: rms_core::CancelToken) -> Self {
        self.options.cancel = cancel;
        self
    }

    /// Selects graceful degradation under cancellation: instead of a
    /// [`FlowError::Timeout`], a cancelled run compiles and **fully
    /// verifies** the best iterate the optimizer completed before the
    /// deadline (the report's `opt.cancelled` flag records the
    /// truncation). Default: off.
    pub fn best_effort(mut self, best_effort: bool) -> Self {
        self.best_effort = best_effort;
        self
    }

    /// A read-only view of the source netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Executes all stages and returns the report plus artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Unsupported`] when the BDD frontend is asked
    /// to handle a circuit too wide for truth tables, and
    /// [`FlowError::Verification`] when a compiled program disagrees with
    /// the source netlist (which would indicate a bug in the toolchain —
    /// the error carries a concrete counterexample input assignment).
    pub fn run(self) -> Result<FlowOutput, FlowError> {
        let Pipeline {
            netlist,
            algorithm,
            realization,
            options,
            frontend,
            verify,
            seed,
            engine,
            best_effort,
            parse_time,
        } = self;

        let t0 = Instant::now();
        let initial_mig = seed_mig(&netlist, frontend)?;
        let construct = t0.elapsed();
        let initial = MigStats::of(&initial_mig);

        let t0 = Instant::now();
        let (mig, opt_stats) =
            run_algorithm_engine(&initial_mig, algorithm, realization, &options, engine);
        let optimize = t0.elapsed();
        if opt_stats.cancelled && !best_effort {
            return Err(FlowError::Timeout(format!(
                "optimization of {:?} abandoned after {} of {} cycles at the request deadline                  (re-run with best-effort to keep the best completed iterate)",
                netlist.name(),
                opt_stats.cycles,
                options.effort
            )));
        }
        // Report the engine that actually ran, not the one requested:
        // the hybrid cut+RRAM script only exists on the rebuild driver,
        // and the sweep/resub scripts only exist in-place (a rebuild
        // request falls back to the incremental base).
        let engine = if algorithm == Algorithm::CutRram {
            Engine::Rebuild
        } else if matches!(
            algorithm,
            Algorithm::Sweep | Algorithm::Resub | Algorithm::SweepResub
        ) && engine == Engine::Rebuild
        {
            Engine::Incremental
        } else {
            engine
        };
        let optimized = MigStats::of(&mig);
        let cost = RramCost::of(&mig, realization);

        let t0 = Instant::now();
        let array = compile(&mig, realization);
        let plim = compile_plim(&mig);
        let compile_time = t0.elapsed();

        let t0 = Instant::now();
        let programs = [("array", &array.program), ("plim", &plim.program)];
        // Best-effort runs must still end in a *verified* result, so the
        // verification stage runs to completion with an inert token; a
        // strict (non-best-effort) deadline keeps cancelling through it.
        let verify_cancel = if best_effort {
            rms_core::CancelToken::default()
        } else {
            options.cancel.clone()
        };
        let verify_outcome =
            verify::verify_programs(&netlist, &programs, verify, seed, &verify_cancel)?;
        if let VerifyOutcome::Failed {
            what,
            counterexample,
        } = &verify_outcome
        {
            return Err(FlowError::Verification(format!(
                "{what}; counterexample: {}",
                format_assignment(netlist.input_names(), counterexample)
            )));
        }
        let verify_time = t0.elapsed();

        let report = FlowReport {
            name: netlist.name().to_string(),
            num_inputs: netlist.num_inputs(),
            num_outputs: netlist.num_outputs(),
            source_gates: netlist.num_gates(),
            algorithm,
            realization,
            effort: options.effort,
            frontend,
            initial,
            optimized,
            opt: opt_stats,
            cost,
            array_steps: array.program.num_steps(),
            array_physical_rrams: array.physical_rrams,
            plim_instructions: plim.instructions,
            plim_cells: plim.cells,
            verify: verify_outcome,
            verify_mode: verify,
            verify_seed: seed,
            engine,
            timings: StageTimings {
                parse: parse_time,
                construct,
                optimize,
                compile: compile_time,
                verify: verify_time,
            },
        };
        Ok(FlowOutput {
            report,
            netlist,
            mig,
            array,
            plim,
        })
    }
}

/// Builds the initial MIG according to the chosen frontend.
fn seed_mig(netlist: &Netlist, frontend: Frontend) -> Result<Mig, FlowError> {
    match frontend {
        Frontend::Direct => Ok(Mig::from_netlist(netlist)),
        Frontend::Aig => {
            let aig = Aig::from_netlist(netlist).balance();
            Ok(Mig::from_netlist(&aig.to_netlist()))
        }
        Frontend::Bdd => {
            let n = netlist.num_inputs();
            if n > BDD_FRONTEND_MAX_VARS.min(MAX_VARS) {
                return Err(FlowError::Unsupported(format!(
                    "the BDD frontend materializes truth tables and supports at most {} inputs; \
                     {:?} has {n}",
                    BDD_FRONTEND_MAX_VARS.min(MAX_VARS),
                    netlist.name()
                )));
            }
            let shannon = synth::shannon_netlist(netlist.name(), &netlist.truth_tables());
            Ok(Mig::from_netlist(&shannon))
        }
    }
}

/// Runs an optimization algorithm with the full engine set: the paper's
/// Algs. 1–4 from `rms-core`, plus the cut-rewriting variants backed by
/// the `rms-cut` NPN database ([`Algorithm::Cut`] / [`Algorithm::CutRram`],
/// which plain [`Algorithm::run`] can only approximate).
pub fn run_algorithm(
    mig: &Mig,
    algorithm: Algorithm,
    realization: Realization,
    options: &OptOptions,
) -> (Mig, OptStats) {
    run_algorithm_engine(mig, algorithm, realization, options, Engine::default())
}

/// [`run_algorithm`] on an explicit cut-rewriting engine. The paper's
/// Algs. 1–4 are engine-independent; [`Algorithm::Cut`] dispatches on
/// it (see [`Engine`]); [`Algorithm::CutRram`]'s hybrid round is
/// implemented on the rebuild driver only and ignores the request.
pub fn run_algorithm_engine(
    mig: &Mig,
    algorithm: Algorithm,
    realization: Realization,
    options: &OptOptions,
    engine: Engine,
) -> (Mig, OptStats) {
    match algorithm {
        Algorithm::Cut => rms_cut::optimize_cut_stats_engine(mig, options, engine),
        Algorithm::CutRram => rms_cut::optimize_cut_rram_stats(mig, realization, options),
        Algorithm::Sweep => {
            rms_cut::optimize_sweep_stats(mig, options, engine, rms_cut::SweepPasses::FRAIG)
        }
        Algorithm::Resub => {
            rms_cut::optimize_sweep_stats(mig, options, engine, rms_cut::SweepPasses::RESUB)
        }
        Algorithm::SweepResub => {
            rms_cut::optimize_sweep_stats(mig, options, engine, rms_cut::SweepPasses::BOTH)
        }
        other => other.run_stats(mig, realization, options),
    }
}

/// Runs one optimizer configuration and returns the optimized graph with
/// its Table I cost — the primitive the sweep runners are built on.
pub fn optimize_cost(
    mig: &Mig,
    algorithm: Algorithm,
    realization: Realization,
    options: &OptOptions,
) -> (Mig, RramCost) {
    let (out, _) = run_algorithm(mig, algorithm, realization, options);
    let cost = RramCost::of(&out, realization);
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_BLIF: &str = "\
.model sample
.inputs a b c d e
.outputs f g
.names a b p1
11 1
.names c d p2
10 1
01 1
.names p1 p2 e f
11- 1
--1 1
.names a d e g
000 1
111 1
.end
";

    #[test]
    fn full_run_verifies_exhaustively() {
        let out = Pipeline::from_str(InputFormat::Blif, SAMPLE_BLIF, "sample")
            .unwrap()
            .algorithm(Algorithm::RramCosts)
            .realization(Realization::Imp)
            .effort(8)
            .run()
            .unwrap();
        assert_eq!(out.report.verify, VerifyOutcome::Exhaustive);
        assert_eq!(out.report.num_inputs, 5);
        assert_eq!(out.report.num_outputs, 2);
        assert_eq!(out.report.cost, RramCost::of(&out.mig, Realization::Imp));
        assert!(out.report.plim_instructions >= out.report.array_steps);
    }

    #[test]
    fn frontends_agree_on_function() {
        let reference = Pipeline::from_str(InputFormat::Blif, SAMPLE_BLIF, "s")
            .unwrap()
            .netlist()
            .truth_tables();
        for frontend in [Frontend::Direct, Frontend::Aig, Frontend::Bdd] {
            let out = Pipeline::from_str(InputFormat::Blif, SAMPLE_BLIF, "s")
                .unwrap()
                .frontend(frontend)
                .effort(4)
                .run()
                .unwrap();
            assert_eq!(out.mig.truth_tables(), reference, "{frontend}");
        }
    }

    #[test]
    fn bdd_frontend_rejects_wide_circuits() {
        let mut b = rms_logic::NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..40).map(|i| b.input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &w in &ins[1..] {
            acc = b.xor(acc, w);
        }
        b.output("o", acc);
        let err = Pipeline::new(b.build()).frontend(Frontend::Bdd).run();
        assert!(matches!(err, Err(FlowError::Unsupported(_))));
    }

    #[test]
    fn wide_circuits_get_sat_proved_by_default() {
        let mut b = rms_logic::NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..20).map(|i| b.input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &w in &ins[1..] {
            acc = b.maj(acc, w, ins[0]);
        }
        b.output("o", acc);
        let out = Pipeline::new(b.build()).effort(2).run().unwrap();
        assert!(
            matches!(out.report.verify, VerifyOutcome::Proved { .. }),
            "{:?}",
            out.report.verify
        );
        assert!(out.report.verify.is_proof());
    }

    #[test]
    fn sampling_survives_as_an_explicit_opt_out() {
        let mut b = rms_logic::NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..20).map(|i| b.input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &w in &ins[1..] {
            acc = b.maj(acc, w, ins[0]);
        }
        b.output("o", acc);
        let out = Pipeline::new(b.build())
            .effort(2)
            .verify_mode(VerifyMode::Sampled)
            .run()
            .unwrap();
        assert!(matches!(out.report.verify, VerifyOutcome::Sampled { .. }));
        assert!(!out.report.verify.is_proof());
    }

    #[test]
    fn narrow_circuits_can_force_a_sat_proof() {
        let out = Pipeline::from_str(InputFormat::Blif, SAMPLE_BLIF, "s")
            .unwrap()
            .effort(4)
            .verify_mode(VerifyMode::Sat)
            .run()
            .unwrap();
        assert!(matches!(out.report.verify, VerifyOutcome::Proved { .. }));
        assert_eq!(out.report.verify_mode, VerifyMode::Sat);
    }

    #[test]
    fn cut_algorithms_run_and_verify() {
        for alg in [Algorithm::Cut, Algorithm::CutRram] {
            let out = Pipeline::from_str(InputFormat::Blif, SAMPLE_BLIF, "s")
                .unwrap()
                .algorithm(alg)
                .effort(4)
                .run()
                .unwrap();
            assert_eq!(out.report.verify, VerifyOutcome::Exhaustive, "{alg}");
            assert_eq!(out.report.algorithm, alg);
            assert_eq!(out.report.opt.gates_after, out.mig.num_gates() as u64);
        }
    }

    #[test]
    fn seed_threads_into_sampled_verification() {
        let mut b = rms_logic::NetlistBuilder::new("wide");
        let ins: Vec<_> = (0..20).map(|i| b.input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &w in &ins[1..] {
            acc = b.maj(acc, w, ins[0]);
        }
        b.output("o", acc);
        let out = Pipeline::new(b.build())
            .effort(1)
            .seed(42)
            .verify_mode(VerifyMode::Sampled)
            .run()
            .unwrap();
        assert!(matches!(out.report.verify, VerifyOutcome::Sampled { .. }));
        assert_eq!(out.report.verify_seed, 42);
        // The default seed is fixed, not time-derived.
        let nl = input::load_bench("rd53_f2").unwrap();
        let out = Pipeline::new(nl).effort(1).run().unwrap();
        assert_eq!(out.report.verify_seed, super::DEFAULT_VERIFY_SEED);
    }

    #[test]
    fn optimize_cost_matches_algorithm_run() {
        let nl = input::load_bench("rd53_f2").unwrap();
        let mig = Mig::from_netlist(&nl);
        let opts = OptOptions::with_effort(6);
        let (out, cost) = optimize_cost(&mig, Algorithm::Steps, Realization::Maj, &opts);
        assert_eq!(cost, RramCost::of(&out, Realization::Maj));
        let direct = Algorithm::Steps.run(&mig, Realization::Maj, &opts);
        assert_eq!(RramCost::of(&direct, Realization::Maj), cost);
    }
}
