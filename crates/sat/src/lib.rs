//! Formal equivalence checking for the synthesis pipeline: a
//! self-contained CDCL SAT solver plus Tseitin miter encoders.
//!
//! The paper's guarantee is that every optimized MIG and compiled RRAM
//! program computes the same function as its specification. Exhaustive
//! simulation proves that only up to the truth-table width cutoff;
//! random sampling above it is evidence, not proof. This crate closes the
//! gap with the classic formal route:
//!
//! 1. [`solver`] — a conflict-driven clause-learning SAT solver (watched
//!    literals, first-UIP learning, VSIDS activities, phase saving, Luby
//!    restarts), `std`-only and fully deterministic;
//! 2. [`tseitin`] — an [`Encoder`] lowering gates to CNF with constant
//!    folding, structural hashing, and a *native* majority encoding (one
//!    variable, six prime-implicant clauses per MAJ — no AND/OR
//!    expansion);
//! 3. [`miter`] — equivalence problems over shared inputs: netlist vs.
//!    netlist and netlist vs. compiled RRAM [`rms_rram::isa::Program`]
//!    (array or PLiM), where UNSAT *proves* equivalence at any width and
//!    a model is a concrete counterexample assignment.
//!
//! `rms-flow` builds its tiered verification policy (exhaustive / SAT
//! proof / opt-out sampling) on [`check_netlists`] and
//! [`check_netlist_vs_program`]; the differential test harness uses the
//! same entry points to prove all optimization algorithms agree on
//! random netlists. See `ARCHITECTURE.md` for the policy and encoding
//! details.
//!
//! # Example
//!
//! ```
//! use rms_logic::NetlistBuilder;
//! use rms_sat::{check_netlists, MiterOutcome};
//!
//! let mut b = NetlistBuilder::new("spec");
//! let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
//! let m = b.maj(x, y, z);
//! b.output("f", m);
//! let spec = b.build();
//!
//! let mut b = NetlistBuilder::new("impl");
//! let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
//! let xy = b.and(x, y);
//! let xz = b.and(x, z);
//! let yz = b.and(y, z);
//! let o1 = b.or(xy, xz);
//! let o2 = b.or(o1, yz);
//! b.output("f", o2);
//! let sum = b.build();
//!
//! assert!(check_netlists(&spec, &sum).unwrap().is_equivalent());
//! ```

pub mod lit;
pub mod miter;
pub mod solver;
pub mod tseitin;

pub use lit::{Lit, Var};
pub use miter::{
    check_netlist_vs_program, check_netlist_vs_program_cancellable,
    check_netlist_vs_program_limited, check_netlists, check_netlists_cancellable,
    check_netlists_limited, Miter, MiterError, MiterOutcome,
};
pub use solver::{SatResult, Solver, SolverStats};
pub use tseitin::Encoder;
