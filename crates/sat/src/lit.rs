//! Boolean variables and literals.
//!
//! A [`Var`] is an index into the solver's variable table; a [`Lit`] packs
//! a variable and a sign into one `u32` (the low bit is the sign), the
//! standard MiniSat layout that makes literals directly usable as watch
//! list indices.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's index in the solver's tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// The low bit is the sign (`1` = negated); the remaining bits are the
/// variable index, so `lit.code()` enumerates literals densely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The literal over `var`, negated iff `negated`.
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit((var.0 << 1) | negated as u32)
    }

    /// The positive literal over `var`.
    pub fn positive(var: Var) -> Lit {
        Lit::new(var, false)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The positive literal over the same variable.
    #[must_use]
    pub fn abs(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Dense index for watch lists (`2 * var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let v = Var(7);
        let l = Lit::new(v, true);
        assert_eq!(l.var(), v);
        assert!(l.is_negated());
        assert_eq!((!l).var(), v);
        assert!(!(!l).is_negated());
        assert_eq!(l.abs(), Lit::positive(v));
        assert_eq!(l.code(), 15);
        assert_eq!(l.to_string(), "!v7");
    }
}
