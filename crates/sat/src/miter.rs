//! Miter construction and equivalence proofs.
//!
//! A *miter* joins two circuits over shared primary inputs, XORs each
//! output pair, and ORs the differences: the miter output is satisfiable
//! **iff** the circuits disagree on some input. An UNSAT answer is
//! therefore a *proof* of functional equivalence — at any input width,
//! unlike exhaustive simulation — and a SAT model is a concrete
//! counterexample assignment.
//!
//! [`Miter`] can encode both circuit shapes the pipeline produces:
//!
//! - a gate-level [`Netlist`] (the specification, or an optimized MIG via
//!   `Mig::to_netlist`), and
//! - a compiled RRAM [`Program`] (level-parallel array or serial PLiM
//!   stream), by symbolic execution: every device starts at the
//!   constant-false literal and each micro-op rewrites its destination
//!   literal, reading the pre-step state exactly like the cycle-accurate
//!   machine does.
//!
//! # Example
//!
//! ```
//! use rms_logic::NetlistBuilder;
//! use rms_sat::{check_netlists, MiterOutcome};
//!
//! let mut b = NetlistBuilder::new("a");
//! let (x, y) = (b.input("x"), b.input("y"));
//! let o = b.and(x, y);
//! b.output("f", b.not(o));
//! let a = b.build();
//!
//! let mut b = NetlistBuilder::new("b");
//! let (x, y) = (b.input("x"), b.input("y"));
//! let o = b.or(b.not(x), b.not(y)); // De Morgan
//! b.output("f", o);
//! let bnl = b.build();
//!
//! match check_netlists(&a, &bnl).unwrap() {
//!     MiterOutcome::Equivalent { .. } => {}
//!     MiterOutcome::Counterexample { .. } => panic!("De Morgan holds"),
//! }
//! ```

use crate::lit::Lit;
use crate::solver::SatResult;
use crate::tseitin::Encoder;
use rms_logic::netlist::{GateKind, Netlist, Wire};
use rms_rram::isa::{MicroOp, Operand, Program, ProgramError};
use std::fmt;

/// Outcome of an equivalence proof attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterOutcome {
    /// The miter is UNSAT: the two circuits are equivalent on **all**
    /// `2^n` inputs. Carries the proof effort.
    Equivalent {
        /// Conflicts of the refutation.
        conflicts: u64,
        /// Branching decisions of the refutation.
        decisions: u64,
    },
    /// The miter is SAT: the circuits disagree on this input assignment
    /// (index `i` is primary input `i`).
    Counterexample {
        /// One disagreeing input assignment.
        inputs: Vec<bool>,
    },
}

impl MiterOutcome {
    /// Whether the proof succeeded.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, MiterOutcome::Equivalent { .. })
    }
}

/// A structural mismatch that makes a miter ill-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterError {
    /// The two sides declare different primary-input counts.
    InputCountMismatch {
        /// Inputs of side A.
        a: usize,
        /// Inputs of side B.
        b: usize,
    },
    /// The two sides declare different output counts.
    OutputCountMismatch {
        /// Outputs of side A.
        a: usize,
        /// Outputs of side B.
        b: usize,
    },
    /// A program failed structural validation.
    InvalidProgram(ProgramError),
}

impl fmt::Display for MiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiterError::InputCountMismatch { a, b } => {
                write!(f, "input counts differ: {a} vs {b}")
            }
            MiterError::OutputCountMismatch { a, b } => {
                write!(f, "output counts differ: {a} vs {b}")
            }
            MiterError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for MiterError {}

impl From<ProgramError> for MiterError {
    fn from(e: ProgramError) -> Self {
        MiterError::InvalidProgram(e)
    }
}

/// An equivalence-checking problem under construction: shared inputs plus
/// any number of encoded circuit sides.
#[derive(Debug)]
pub struct Miter {
    enc: Encoder,
    inputs: Vec<Lit>,
}

impl Miter {
    /// Creates a miter over `num_inputs` shared primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        let mut enc = Encoder::new();
        let inputs = (0..num_inputs).map(|_| enc.fresh()).collect();
        Miter { enc, inputs }
    }

    /// The shared primary-input literals.
    pub fn inputs(&self) -> &[Lit] {
        &self.inputs
    }

    /// The underlying encoder (for custom sides).
    pub fn encoder(&mut self) -> &mut Encoder {
        &mut self.enc
    }

    /// Attaches a cooperative-cancellation token: a cancelled token makes
    /// [`Miter::prove_limited`] return `Ok(None)` at the next solver
    /// restart boundary, exactly like budget exhaustion. Callers tell the
    /// two apart by checking the token afterwards.
    pub fn set_cancel(&mut self, cancel: rms_core::CancelToken) {
        self.enc.set_cancel(cancel);
    }

    /// Encodes a netlist over the shared inputs; returns its output
    /// literals.
    ///
    /// # Errors
    ///
    /// Returns [`MiterError::InputCountMismatch`] when the netlist width
    /// differs from the miter's.
    pub fn add_netlist(&mut self, nl: &Netlist) -> Result<Vec<Lit>, MiterError> {
        if nl.num_inputs() != self.inputs.len() {
            return Err(MiterError::InputCountMismatch {
                a: self.inputs.len(),
                b: nl.num_inputs(),
            });
        }
        // Node values in topological order: constant, inputs, gates.
        let mut vals: Vec<Lit> = Vec::with_capacity(nl.num_nodes());
        vals.push(self.enc.false_lit());
        vals.extend_from_slice(&self.inputs);
        for (idx, gate) in nl.gates() {
            debug_assert_eq!(idx, vals.len(), "gates arrive in node order");
            let f: Vec<Lit> = gate.fanins.iter().map(|&w| wire_lit(&vals, w)).collect();
            let z = match gate.kind {
                GateKind::And => self.enc.and(f[0], f[1]),
                GateKind::Or => self.enc.or(f[0], f[1]),
                GateKind::Xor => self.enc.xor(f[0], f[1]),
                GateKind::Maj => self.enc.maj(f[0], f[1], f[2]),
                GateKind::Mux => self.enc.mux(f[0], f[1], f[2]),
            };
            vals.push(z);
        }
        Ok(nl
            .outputs()
            .iter()
            .map(|&(_, w)| wire_lit(&vals, w))
            .collect())
    }

    /// Symbolically executes a compiled RRAM program over the shared
    /// inputs; returns its output literals.
    ///
    /// # Errors
    ///
    /// Returns [`MiterError::InvalidProgram`] when the program fails
    /// [`Program::validate`], and [`MiterError::InputCountMismatch`] when
    /// its input count differs from the miter's.
    pub fn add_program(&mut self, program: &Program) -> Result<Vec<Lit>, MiterError> {
        if program.num_inputs != self.inputs.len() {
            return Err(MiterError::InputCountMismatch {
                a: self.inputs.len(),
                b: program.num_inputs,
            });
        }
        program.validate()?;
        // Devices power up false, matching the machine.
        let mut regs: Vec<Lit> = vec![self.enc.false_lit(); program.num_regs];
        let mut writes: Vec<(usize, Lit)> = Vec::new();
        for step in &program.steps {
            writes.clear();
            for op in step {
                // All reads observe the pre-step state (`regs` is only
                // updated after the whole step), matching the ISA.
                let (dst, lit) = match *op {
                    MicroOp::False { dst } => (dst, self.enc.false_lit()),
                    MicroOp::Load { dst, src } => {
                        let v = operand_lit(&self.enc, &self.inputs, &regs, src);
                        (dst, v)
                    }
                    MicroOp::Imp { p, q } => {
                        let pv = operand_lit(&self.enc, &self.inputs, &regs, p);
                        let qv = regs[q.0 as usize];
                        (q, self.enc.or(!pv, qv))
                    }
                    MicroOp::Maj { p, q, r } => {
                        let pv = operand_lit(&self.enc, &self.inputs, &regs, p);
                        let qv = operand_lit(&self.enc, &self.inputs, &regs, q);
                        let rv = regs[r.0 as usize];
                        (r, self.enc.maj(pv, !qv, rv))
                    }
                };
                writes.push((dst.0 as usize, lit));
            }
            for &(dst, lit) in &writes {
                regs[dst] = lit;
            }
        }
        Ok(program
            .outputs
            .iter()
            .map(|(_, r)| regs[r.0 as usize])
            .collect())
    }

    /// Asserts the miter over two output vectors and solves.
    ///
    /// # Errors
    ///
    /// Returns [`MiterError::OutputCountMismatch`] when the vectors have
    /// different lengths.
    pub fn prove(self, a: &[Lit], b: &[Lit]) -> Result<MiterOutcome, MiterError> {
        Ok(self
            .prove_limited(a, b, None)?
            .expect("unlimited proof always answers"))
    }

    /// Like [`Miter::prove`] with a conflict budget: `Ok(None)` means
    /// the solver ran out of budget with no answer (the caller should
    /// fall back to a weaker check rather than hang on an adversarial
    /// instance).
    ///
    /// # Errors
    ///
    /// Returns [`MiterError::OutputCountMismatch`] when the vectors have
    /// different lengths.
    pub fn prove_limited(
        mut self,
        a: &[Lit],
        b: &[Lit],
        max_conflicts: Option<u64>,
    ) -> Result<Option<MiterOutcome>, MiterError> {
        if a.len() != b.len() {
            return Err(MiterError::OutputCountMismatch {
                a: a.len(),
                b: b.len(),
            });
        }
        let diffs: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(&la, &lb)| self.enc.xor(la, lb))
            .collect();
        let any = self.enc.or_many(&diffs);
        self.enc.assert_true(any);
        match self.enc.solve_limited(max_conflicts) {
            None => Ok(None),
            Some(SatResult::Unsat) => {
                let stats = self.enc.stats();
                Ok(Some(MiterOutcome::Equivalent {
                    conflicts: stats.conflicts,
                    decisions: stats.decisions,
                }))
            }
            Some(SatResult::Sat) => Ok(Some(MiterOutcome::Counterexample {
                inputs: self.inputs.iter().map(|&l| self.enc.value(l)).collect(),
            })),
        }
    }
}

fn operand_lit(enc: &Encoder, inputs: &[Lit], regs: &[Lit], operand: Operand) -> Lit {
    match operand {
        Operand::Const(b) => enc.constant(b),
        Operand::Input(i) => inputs[i],
        Operand::Reg(r) => regs[r.0 as usize],
    }
}

fn wire_lit(vals: &[Lit], w: Wire) -> Lit {
    let l = vals[w.node()];
    if w.is_complemented() {
        !l
    } else {
        l
    }
}

/// Proves two netlists equivalent (inputs and outputs matched by
/// position).
///
/// # Errors
///
/// Returns [`MiterError`] on input/output arity mismatches.
pub fn check_netlists(a: &Netlist, b: &Netlist) -> Result<MiterOutcome, MiterError> {
    Ok(check_netlists_limited(a, b, None)?.expect("unlimited proof always answers"))
}

/// Budgeted form of [`check_netlists`]: `Ok(None)` when `max_conflicts`
/// ran out without an answer.
///
/// # Errors
///
/// Returns [`MiterError`] on input/output arity mismatches.
pub fn check_netlists_limited(
    a: &Netlist,
    b: &Netlist,
    max_conflicts: Option<u64>,
) -> Result<Option<MiterOutcome>, MiterError> {
    check_netlists_cancellable(a, b, max_conflicts, &rms_core::CancelToken::default())
}

/// [`check_netlists_limited`] with a cancellation token: a cancelled
/// token yields `Ok(None)` at the next solver restart boundary (check
/// the token afterwards to distinguish cancellation from budget
/// exhaustion).
///
/// # Errors
///
/// Returns [`MiterError`] on input/output arity mismatches.
pub fn check_netlists_cancellable(
    a: &Netlist,
    b: &Netlist,
    max_conflicts: Option<u64>,
    cancel: &rms_core::CancelToken,
) -> Result<Option<MiterOutcome>, MiterError> {
    let mut miter = Miter::new(a.num_inputs());
    miter.set_cancel(cancel.clone());
    let oa = miter.add_netlist(a)?;
    let ob = miter.add_netlist(b)?;
    miter.prove_limited(&oa, &ob, max_conflicts)
}

/// Proves a compiled RRAM program equivalent to its specification
/// netlist.
///
/// # Errors
///
/// Returns [`MiterError`] on arity mismatches or an invalid program.
pub fn check_netlist_vs_program(
    nl: &Netlist,
    program: &Program,
) -> Result<MiterOutcome, MiterError> {
    Ok(check_netlist_vs_program_limited(nl, program, None)?
        .expect("unlimited proof always answers"))
}

/// Budgeted form of [`check_netlist_vs_program`]: `Ok(None)` when
/// `max_conflicts` ran out without an answer.
///
/// # Errors
///
/// Returns [`MiterError`] on arity mismatches or an invalid program.
pub fn check_netlist_vs_program_limited(
    nl: &Netlist,
    program: &Program,
    max_conflicts: Option<u64>,
) -> Result<Option<MiterOutcome>, MiterError> {
    check_netlist_vs_program_cancellable(
        nl,
        program,
        max_conflicts,
        &rms_core::CancelToken::default(),
    )
}

/// [`check_netlist_vs_program_limited`] with a cancellation token (same
/// contract as [`check_netlists_cancellable`]).
///
/// # Errors
///
/// Returns [`MiterError`] on arity mismatches or an invalid program.
pub fn check_netlist_vs_program_cancellable(
    nl: &Netlist,
    program: &Program,
    max_conflicts: Option<u64>,
    cancel: &rms_core::CancelToken,
) -> Result<Option<MiterOutcome>, MiterError> {
    let mut miter = Miter::new(nl.num_inputs());
    miter.set_cancel(cancel.clone());
    let on = miter.add_netlist(nl)?;
    let op = miter.add_program(program)?;
    miter.prove_limited(&on, &op, max_conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::NetlistBuilder;

    fn full_adder(reassociate: bool) -> Netlist {
        let mut b = NetlistBuilder::new("fa");
        let x = b.input("x");
        let y = b.input("y");
        let c = b.input("cin");
        let (sum, carry) = if reassociate {
            let s1 = b.xor(y, c);
            let sum = b.xor(s1, x);
            let carry = b.maj(c, x, y);
            (sum, carry)
        } else {
            let s1 = b.xor(x, y);
            let sum = b.xor(s1, c);
            let carry = b.maj(x, y, c);
            (sum, carry)
        };
        b.output("s", sum);
        b.output("co", carry);
        b.build()
    }

    #[test]
    fn reassociated_adders_are_equivalent() {
        let out = check_netlists(&full_adder(false), &full_adder(true)).unwrap();
        assert!(out.is_equivalent(), "{out:?}");
    }

    #[test]
    fn broken_adder_yields_a_counterexample() {
        let good = full_adder(false);
        let mut b = NetlistBuilder::new("bad");
        let x = b.input("x");
        let y = b.input("y");
        let c = b.input("cin");
        let s1 = b.xor(x, y);
        let sum = b.xor(s1, c);
        let carry = b.maj(x, y, b.not(c)); // bug: complemented carry-in
        b.output("s", sum);
        b.output("co", carry);
        let bad = b.build();
        match check_netlists(&good, &bad).unwrap() {
            MiterOutcome::Counterexample { inputs } => {
                // The model must actually distinguish the two circuits.
                let m = inputs
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
                assert_ne!(good.evaluate(m), bad.evaluate(m), "inputs {inputs:?}");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn arity_mismatches_are_structural_errors() {
        let a = full_adder(false);
        let mut b = NetlistBuilder::new("two");
        let x = b.input("x");
        let y = b.input("y");
        let o = b.and(x, y);
        b.output("f", o);
        let two = b.build();
        assert!(matches!(
            check_netlists(&a, &two),
            Err(MiterError::InputCountMismatch { a: 3, b: 2 })
        ));
    }

    #[test]
    fn program_miter_matches_machine_semantics() {
        use rms_rram::gates::{imp_majority_gate, maj_majority_gate};
        // Both hand-written majority-gate programs implement MAJ(a,b,c);
        // check each against a majority netlist.
        let mut b = NetlistBuilder::new("maj");
        let x = b.input("a");
        let y = b.input("b");
        let z = b.input("c");
        let m = b.maj(x, y, z);
        b.output("f", m);
        let spec = b.build();
        for program in [imp_majority_gate(), maj_majority_gate()] {
            let out = check_netlist_vs_program(&spec, &program).unwrap();
            assert!(out.is_equivalent(), "{out:?}");
        }
    }

    #[test]
    fn program_with_wrong_function_is_caught() {
        use rms_rram::gates::maj_majority_gate;
        let mut b = NetlistBuilder::new("notmaj");
        let x = b.input("a");
        let y = b.input("b");
        let z = b.input("c");
        let m = b.and(x, y);
        let m2 = b.and(m, z);
        b.output("f", m2);
        let spec = b.build();
        let out = check_netlist_vs_program(&spec, &maj_majority_gate()).unwrap();
        assert!(!out.is_equivalent(), "AND3 != MAJ3");
    }
}
