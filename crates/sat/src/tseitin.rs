//! Tseitin encoding of combinational logic into CNF.
//!
//! [`Encoder`] wraps a [`Solver`] with a gate-level interface: every call
//! like [`Encoder::and`] returns a literal whose CNF definition has been
//! added to the solver. Three standard strengthenings keep the formulas
//! small and the miters easy:
//!
//! - **constant folding** — gates over constant or repeated literals
//!   reduce without emitting clauses,
//! - **structural hashing** — a gate over the same (canonicalized)
//!   operands is encoded once and shared, and
//! - **canonical polarities** — XOR and MAJ are normalized through their
//!   complement symmetries (`x ^ !y = !(x ^ y)`, `M(!a,!b,!c) =
//!   !M(a,b,c)`), so complement-heavy MIGs still hash onto few distinct
//!   gates.
//!
//! Majority gates are encoded *natively* — one fresh variable and the six
//! prime-implicant clauses of `z ↔ MAJ(a,b,c)` — instead of expanding to
//! the AND/OR sum, which would triple the auxiliary variable count on
//! MIG-shaped inputs.
//!
//! # Example
//!
//! ```
//! use rms_sat::{Encoder, SatResult};
//!
//! let mut enc = Encoder::new();
//! let a = enc.fresh();
//! let b = enc.fresh();
//! let c = enc.fresh();
//! let m1 = enc.maj(a, b, c);
//! let m2 = enc.maj(!a, !b, !c); // self-duality folds this to !m1
//! assert_eq!(m2, !m1);
//! let diff = enc.xor(m1, !m2); // folds to constant false
//! enc.assert_true(diff); // "m1 differs from !m2" has no model
//! assert_eq!(enc.solve(), SatResult::Unsat);
//! ```

use crate::lit::Lit;
use crate::solver::{SatResult, Solver, SolverStats};
use rms_core::hash::FxHashMap;

/// A structurally-hashed gate key (operands already canonicalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    Maj(Lit, Lit, Lit),
    Mux(Lit, Lit, Lit),
}

/// CNF builder over a [`Solver`].
#[derive(Debug)]
pub struct Encoder {
    solver: Solver,
    true_lit: Lit,
    cache: FxHashMap<GateKey, Lit>,
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

impl Encoder {
    /// Creates an encoder with the constant-true literal pre-asserted.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let true_lit = Lit::positive(solver.new_var());
        solver.add_clause(&[true_lit]);
        Encoder {
            solver,
            true_lit,
            cache: FxHashMap::default(),
        }
    }

    /// The constant-true literal.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The constant-false literal.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// The literal for a boolean constant.
    pub fn constant(&self, value: bool) -> Lit {
        if value {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    /// Allocates a fresh unconstrained variable and returns its positive
    /// literal (used for primary inputs).
    pub fn fresh(&mut self) -> Lit {
        Lit::positive(self.solver.new_var())
    }

    fn is_const(&self, l: Lit) -> Option<bool> {
        if l == self.true_lit {
            Some(true)
        } else if l == self.false_lit() {
            Some(false)
        } else {
            None
        }
    }

    fn define(&mut self, key: GateKey, clauses: impl FnOnce(Lit) -> Vec<Vec<Lit>>) -> Lit {
        if let Some(&z) = self.cache.get(&key) {
            return z;
        }
        let z = self.fresh();
        for clause in clauses(z) {
            self.solver.add_clause(&clause);
        }
        self.cache.insert(key, z);
        z
    }

    /// `a ∧ b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.false_lit(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let (x, y) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        self.define(GateKey::And(x, y), |z| {
            vec![vec![!z, x], vec![!z, y], vec![!x, !y, z]]
        })
    }

    /// `a ∨ b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Material implication `a → b`.
    pub fn imp(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// `a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(va), Some(vb)) => return self.constant(va ^ vb),
            (Some(va), None) => return if va { !b } else { b },
            (None, Some(vb)) => return if vb { !a } else { a },
            _ => {}
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit;
        }
        // x ^ !y = !(x ^ y): hash positive operands, track the sign.
        let negated = a.is_negated() ^ b.is_negated();
        let (pa, pb) = (a.abs(), b.abs());
        let (x, y) = if pa.code() <= pb.code() {
            (pa, pb)
        } else {
            (pb, pa)
        };
        let z = self.define(GateKey::Xor(x, y), |z| {
            vec![
                vec![!z, x, y],
                vec![!z, !x, !y],
                vec![z, !x, y],
                vec![z, x, !y],
            ]
        });
        if negated {
            !z
        } else {
            z
        }
    }

    /// Three-input majority `MAJ(a, b, c)`, encoded natively.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        // Repetition and complement identities (Ω.M of the paper):
        // M(a, a, c) = a.
        if a == b || a == c {
            return a;
        }
        if b == c {
            return b;
        }
        if a == !b {
            return c;
        }
        if a == !c {
            return b;
        }
        if b == !c {
            return a;
        }
        // Constant folding: MAJ(1,b,c) = b ∨ c, MAJ(0,b,c) = b ∧ c.
        for (x, y, zc) in [(a, b, c), (b, a, c), (c, a, b)] {
            match self.is_const(x) {
                Some(true) => return self.or(y, zc),
                Some(false) => return self.and(y, zc),
                None => {}
            }
        }
        // Self-duality: with two or three negated operands, flip all
        // three and complement the output.
        let negs = [a, b, c].iter().filter(|l| l.is_negated()).count();
        let (mut x, mut y, mut z, negated) = if negs >= 2 {
            (!a, !b, !c, true)
        } else {
            (a, b, c, false)
        };
        // Sort operands for the hash key.
        if x.code() > y.code() {
            std::mem::swap(&mut x, &mut y);
        }
        if y.code() > z.code() {
            std::mem::swap(&mut y, &mut z);
        }
        if x.code() > y.code() {
            std::mem::swap(&mut x, &mut y);
        }
        let m = self.define(GateKey::Maj(x, y, z), |m| {
            vec![
                vec![!x, !y, m],
                vec![!x, !z, m],
                vec![!y, !z, m],
                vec![x, y, !m],
                vec![x, z, !m],
                vec![y, z, !m],
            ]
        });
        if negated {
            !m
        } else {
            m
        }
    }

    /// Multiplexer `s ? t : e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        match self.is_const(s) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        if t == s {
            return self.or(s, e); // s ? s : e
        }
        if t == !s {
            return self.and(!s, e); // s ? !s : e
        }
        if e == s {
            return self.and(s, t); // s ? t : s
        }
        if e == !s {
            return self.or(!s, t); // s ? t : !s
        }
        if self.is_const(t).is_some() || self.is_const(e).is_some() {
            // Lower constant arms through AND/OR folding.
            let th = self.and(s, t);
            let el = self.and(!s, e);
            return self.or(th, el);
        }
        // mux(!s, t, e) = mux(s, e, t); mux(s, !t, !e) = !mux(s, t, e).
        let (s, mut t, mut e) = if s.is_negated() {
            (!s, e, t)
        } else {
            (s, t, e)
        };
        let negated = t.is_negated();
        if negated {
            t = !t;
            e = !e;
        }
        let z = self.define(GateKey::Mux(s, t, e), |z| {
            vec![
                vec![!s, !t, z],
                vec![!s, t, !z],
                vec![s, !e, z],
                vec![s, e, !z],
                // Redundant but propagation-strengthening:
                vec![!t, !e, z],
                vec![t, e, !z],
            ]
        });
        if negated {
            !z
        } else {
            z
        }
    }

    /// Disjunction of many literals (used for the miter output).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.false_lit();
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Asserts that `lit` holds in every model.
    pub fn assert_true(&mut self, lit: Lit) {
        if self.is_const(lit) == Some(true) {
            return;
        }
        self.solver.add_clause(&[lit]);
    }

    /// Solves the accumulated formula.
    pub fn solve(&mut self) -> SatResult {
        self.solver.solve()
    }

    /// Attaches a cooperative-cancellation token to the underlying
    /// solver (see [`Solver::set_cancel`]).
    pub fn set_cancel(&mut self, cancel: rms_core::CancelToken) {
        self.solver.set_cancel(cancel);
    }

    /// Solves with a conflict budget; `None` when the budget ran out
    /// (see [`Solver::solve_limited`]).
    pub fn solve_limited(&mut self, max_conflicts: Option<u64>) -> Option<SatResult> {
        self.solver.solve_limited(max_conflicts)
    }

    /// Model value of `lit` after a [`SatResult::Sat`] answer.
    pub fn value(&self, lit: Lit) -> bool {
        self.solver.value(lit)
    }

    /// Search statistics of the underlying solver.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Number of CNF variables allocated (including the constant).
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of clauses in the underlying solver.
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Direct access to the underlying solver (for extra clauses).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks a 2-input gate builder against a reference.
    fn check2(
        build: impl Fn(&mut Encoder, Lit, Lit) -> Lit,
        reference: impl Fn(bool, bool) -> bool,
    ) {
        for m in 0..4u32 {
            let (va, vb) = (m & 1 == 1, m & 2 != 0);
            let mut enc = Encoder::new();
            let a = enc.fresh();
            let b = enc.fresh();
            let z = build(&mut enc, a, b);
            enc.assert_true(if va { a } else { !a });
            enc.assert_true(if vb { b } else { !b });
            assert_eq!(enc.solve(), SatResult::Sat);
            assert_eq!(enc.value(z), reference(va, vb), "minterm {m}");
        }
    }

    #[test]
    fn gate_semantics_exhaustive() {
        check2(|e, a, b| e.and(a, b), |a, b| a && b);
        check2(|e, a, b| e.or(a, b), |a, b| a || b);
        check2(|e, a, b| e.xor(a, b), |a, b| a ^ b);
        check2(|e, a, b| e.imp(a, b), |a, b| !a || b);
        check2(|e, a, b| e.and(!a, b), |a, b| !a && b);
        check2(|e, a, b| e.xor(!a, !b), |a, b| a ^ b);
    }

    #[test]
    fn maj_and_mux_semantics_exhaustive() {
        for m in 0..8u32 {
            let bits = [m & 1 == 1, m & 2 != 0, m & 4 != 0];
            let mut enc = Encoder::new();
            let ins: Vec<Lit> = (0..3).map(|_| enc.fresh()).collect();
            let mj = enc.maj(ins[0], ins[1], ins[2]);
            let mx = enc.mux(ins[0], ins[1], ins[2]);
            let mjn = enc.maj(!ins[0], ins[1], !ins[2]);
            for (l, v) in ins.iter().zip(bits) {
                enc.assert_true(if v { *l } else { !*l });
            }
            assert_eq!(enc.solve(), SatResult::Sat);
            let count = bits.iter().filter(|&&b| b).count();
            assert_eq!(enc.value(mj), count >= 2, "maj at {m}");
            assert_eq!(
                enc.value(mx),
                if bits[0] { bits[1] } else { bits[2] },
                "mux at {m}"
            );
            let negcount = [!bits[0], bits[1], !bits[2]].iter().filter(|&&b| b).count();
            assert_eq!(enc.value(mjn), negcount >= 2, "neg maj at {m}");
        }
    }

    #[test]
    fn constant_folding_adds_no_clauses() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let before = enc.num_clauses();
        let t = enc.true_lit();
        let f = enc.false_lit();
        assert_eq!(enc.and(a, t), a);
        assert_eq!(enc.and(a, f), f);
        assert_eq!(enc.or(a, f), a);
        assert_eq!(enc.xor(a, f), a);
        assert_eq!(enc.xor(a, t), !a);
        assert_eq!(enc.xor(a, !a), t);
        assert_eq!(enc.maj(a, a, f), a);
        assert_eq!(enc.maj(a, !a, t), t);
        assert_eq!(enc.mux(t, a, f), a);
        assert_eq!(enc.num_clauses(), before);
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let b = enc.fresh();
        let c = enc.fresh();
        let x1 = enc.and(a, b);
        let x2 = enc.and(b, a);
        assert_eq!(x1, x2);
        let y1 = enc.xor(a, !b);
        let y2 = enc.xor(!a, b);
        assert_eq!(y1, y2);
        let m1 = enc.maj(a, b, c);
        let m2 = enc.maj(c, a, b);
        let m3 = enc.maj(!c, !a, !b);
        assert_eq!(m1, m2);
        assert_eq!(m3, !m1);
        let vars = enc.num_vars();
        let _ = enc.maj(b, c, a);
        assert_eq!(enc.num_vars(), vars, "no new gate variable");
    }

    #[test]
    fn de_morgan_is_a_tautology() {
        // !(a & b) == (!a | !b) — the miter over them must be UNSAT.
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let b = enc.fresh();
        let lhs = enc.and(a, b);
        let rhs = enc.or(!a, !b);
        let diff = enc.xor(!lhs, rhs);
        enc.assert_true(diff);
        assert_eq!(enc.solve(), SatResult::Unsat);
    }
}
