//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The solver is deliberately conventional — the point of this crate is a
//! *trustworthy* equivalence oracle, not a competition entry — and
//! implements the standard MiniSat-family architecture:
//!
//! - two watched literals per clause for unit propagation,
//! - first-UIP conflict analysis with clause learning,
//! - VSIDS-style variable activities with an indexed max-heap,
//! - phase saving, and
//! - Luby-sequence restarts.
//!
//! It is `std`-only (the workspace builds offline) and fully
//! deterministic: the same clause set always produces the same model,
//! the same conflict count, and the same decision count, which is what
//! lets the parallel differential sweeps assert bit-identical results.
//!
//! # Example
//!
//! ```
//! use rms_sat::{Lit, SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = Lit::positive(s.new_var());
//! let b = Lit::positive(s.new_var());
//! s.add_clause(&[a, b]);
//! s.add_clause(&[!a, b]);
//! s.add_clause(&[!b, a]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert!(s.value(a) && s.value(b));
//! ```

use crate::lit::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists; read it with [`Solver::value`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
}

/// Search statistics of a solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered (equals learned-clause derivations).
    pub conflicts: u64,
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently in the database.
    pub learned: u64,
}

/// Sentinel for "no reason clause" (decisions and root-level units).
const NO_REASON: u32 = u32::MAX;

/// Restart interval unit: the Luby sequence is scaled by this many
/// conflicts.
const RESTART_BASE: u64 = 128;

/// Multiplicative VSIDS decay applied after every conflict.
const ACTIVITY_DECAY: f64 = 0.95;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver: a growable clause database plus search state.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by [`Lit::code`]: clauses currently watching
    /// the literal.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: `0` unassigned, `1` true, `-1` false.
    assign: Vec<i8>,
    /// Saved phase per variable (last value it held).
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause index that implied each variable ([`NO_REASON`] otherwise).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    /// Scratch marker per variable for conflict analysis.
    seen: Vec<bool>,
    /// Set when an empty clause was derived at the root level.
    root_unsat: bool,
    stats: SolverStats,
    /// Cooperative-cancellation handle, polled at restart boundaries
    /// (see [`Solver::set_cancel`]). Inert by default.
    cancel: rms_core::CancelToken,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Attaches a cooperative-cancellation token. The search polls it at
    /// restart boundaries (every 128·Luby conflicts): a cancelled token
    /// makes [`Solver::solve_limited`] backtrack to the root and return
    /// `None`, exactly like conflict-budget exhaustion — learned clauses
    /// are kept and the call can be resumed. [`Solver::solve`] must not
    /// be used with an armed token (it treats `None` as impossible).
    pub fn set_cancel(&mut self, cancel: rms_core::CancelToken) {
        self.cancel = cancel;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses in the database (including learned ones).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Truth value of `lit` under the current (or final) assignment.
    ///
    /// Unassigned variables read as `false`; after [`SatResult::Sat`]
    /// every variable is assigned.
    pub fn value(&self, lit: Lit) -> bool {
        let v = self.assign[lit.var().index()];
        (v > 0) ^ lit.is_negated()
    }

    fn lit_state(&self, lit: Lit) -> i8 {
        lit_state_in(&self.assign, lit)
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause.
    ///
    /// Callable before or between `solve` calls: the solver first
    /// backtracks to the root level (a `Sat` answer leaves the model
    /// assigned, and simplifying the new clause against that model
    /// instead of the root would corrupt it — e.g. a blocking clause
    /// over model literals would collapse to the empty clause).
    /// Literals false at the root are removed, satisfied and
    /// tautological clauses are dropped, and an empty clause marks the
    /// instance unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.backtrack(0);
        if self.root_unsat {
            return;
        }
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var().index() < self.num_vars(), "unknown variable");
            match self.lit_state(l) {
                1 => return, // satisfied at root
                -1 => continue,
                _ => {
                    if c.contains(&!l) {
                        return; // tautology
                    }
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => self.root_unsat = true,
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.root_unsat = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[c[0].code()].push(ci);
                self.watches[c[1].code()].push(ci);
                self.clauses.push(Clause { lits: c });
            }
        }
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        let vi = lit.var().index();
        debug_assert_eq!(self.assign[vi], 0, "enqueue of assigned var");
        self.assign[vi] = if lit.is_negated() { -1 } else { 1 };
        self.phase[vi] = !lit.is_negated();
        self.level[vi] = self.decision_level() as u32;
        self.reason[vi] = reason;
        self.trail.push(lit);
    }

    /// Propagates all pending assignments; returns a conflicting clause
    /// index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Take the watch list; surviving entries are written back.
            let mut list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut j = 0;
            let mut conflict = None;
            'clauses: while i < list.len() {
                let ci = list[i];
                i += 1;
                let clause = &mut self.clauses[ci as usize];
                // Normalize: the other watched literal sits at index 0.
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                let first = clause.lits[0];
                debug_assert_eq!(clause.lits[1], false_lit);
                if lit_state_in(&self.assign, first) == 1 {
                    list[j] = ci;
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..clause.lits.len() {
                    if lit_state_in(&self.assign, clause.lits[k]) != -1 {
                        clause.lits.swap(1, k);
                        let moved = clause.lits[1];
                        self.watches[moved.code()].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement: the clause is unit or conflicting.
                list[j] = ci;
                j += 1;
                if self.lit_state(first) == -1 {
                    // Conflict: keep the remaining entries and stop.
                    while i < list.len() {
                        list[j] = list[i];
                        i += 1;
                        j += 1;
                    }
                    conflict = Some(ci);
                } else {
                    self.enqueue(first, ci);
                }
            }
            list.truncate(j);
            self.watches[false_lit.code()] = list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        let a = &mut self.activity[v.index()];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bump(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var(0))]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        let current = self.decision_level() as u32;
        loop {
            let clause = &self.clauses[conflict as usize];
            // For a reason clause, lits[0] is the implied literal `p`.
            let start = usize::from(p.is_some());
            for k in start..clause.lits.len() {
                let q = clause.lits[k];
                let vi = q.var().index();
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    to_clear.push(q.var());
                    if self.level[vi] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            conflict = self.reason[pl.var().index()];
            debug_assert_ne!(conflict, NO_REASON);
        }
        learnt[0] = !p.expect("analyze reached the first UIP");
        // Bump every variable involved in the conflict (the UIP included —
        // all of them were marked, so all of them are in `to_clear`).
        for &v in &to_clear {
            self.bump(v);
        }
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            // Move the deepest remaining literal to the second watch slot.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        for v in to_clear {
            self.seen[v.index()] = false;
        }
        (learnt, backtrack)
    }

    fn backtrack(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target];
        for i in (keep..self.trail.len()).rev() {
            let vi = self.trail[i].var().index();
            self.assign[vi] = 0;
            self.reason[vi] = NO_REASON;
            self.heap.insert(self.trail[i].var(), &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target);
        self.prop_head = keep;
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            self.enqueue(learnt[0], NO_REASON);
        } else {
            let ci = self.clauses.len() as u32;
            self.watches[learnt[0].code()].push(ci);
            self.watches[learnt[1].code()].push(ci);
            let asserting = learnt[0];
            self.clauses.push(Clause { lits: learnt });
            self.stats.learned += 1;
            self.enqueue(asserting, ci);
        }
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v.index()] == 0 {
                return Some(v);
            }
        }
        None
    }

    /// Solves the current clause set.
    ///
    /// On [`SatResult::Sat`] the model is readable through
    /// [`Solver::value`] until the next `add_clause`/`solve` call; on
    /// [`SatResult::Unsat`] the instance stays unsatisfiable forever
    /// (clause addition is monotone).
    pub fn solve(&mut self) -> SatResult {
        self.solve_limited(None)
            .expect("unlimited solve always answers")
    }

    /// Like [`Solver::solve`] with a conflict budget: returns `None`
    /// when `max_conflicts` conflicts were spent without an answer (the
    /// search backtracks to the root and can be resumed by calling
    /// again — learned clauses are kept, so progress is not lost).
    pub fn solve_limited(&mut self, max_conflicts: Option<u64>) -> Option<SatResult> {
        if self.root_unsat {
            return Some(SatResult::Unsat);
        }
        if self.propagate().is_some() {
            self.root_unsat = true;
            return Some(SatResult::Unsat);
        }
        let mut budget = max_conflicts;
        let mut restart_idx: u64 = 1;
        let mut conflicts_left = RESTART_BASE * luby(restart_idx);
        loop {
            if let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    self.stats.conflicts += 1;
                    self.root_unsat = true;
                    return Some(SatResult::Unsat);
                }
                // The budget is checked before counting/analyzing, so an
                // abandoned conflict is not double-counted on resume and
                // budgeted runs report the same stats as unbudgeted ones.
                if let Some(b) = &mut budget {
                    if *b == 0 {
                        self.backtrack(0);
                        return None;
                    }
                    *b -= 1;
                }
                self.stats.conflicts += 1;
                let (learnt, backtrack) = self.analyze(conflict);
                self.backtrack(backtrack);
                self.learn(learnt);
                self.var_inc /= ACTIVITY_DECAY;
                conflicts_left = conflicts_left.saturating_sub(1);
                if conflicts_left == 0 {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_left = RESTART_BASE * luby(restart_idx);
                    self.backtrack(0);
                    // Restart boundaries double as the solver's
                    // cancellation checkpoints: the trail is already at
                    // the root, so abandoning here loses nothing.
                    if self.cancel.cancelled() {
                        return None;
                    }
                }
            } else if self.trail.len() == self.num_vars() {
                return Some(SatResult::Sat);
            } else {
                let v = self.pick_branch().expect("unassigned variable exists");
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(Lit::new(v, !self.phase[v.index()]), NO_REASON);
            }
        }
    }

    /// Backtracks to the root level, keeping learned clauses.
    /// ([`Solver::add_clause`] does this itself; call this only to drop
    /// a [`SatResult::Sat`] model explicitly.)
    pub fn reset_to_root(&mut self) {
        self.backtrack(0);
    }
}

/// Truth state of `lit` in `assign`: `1` true, `-1` false, `0` unassigned.
fn lit_state_in(assign: &[i8], lit: Lit) -> i8 {
    let v = assign[lit.var().index()];
    if lit.is_negated() {
        -v
    } else {
        v
    }
}

/// The `i`-th element (1-based) of the Luby restart sequence
/// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

/// Indexed binary max-heap over variable activities (the MiniSat order
/// heap): supports insert, pop-max, and increase-key in `O(log n)`.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

impl VarHeap {
    fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != usize::MAX)
    }

    fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.pos.len() <= v.index() {
            self.pos.resize(v.index() + 1, usize::MAX);
        }
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn bump(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v.index()], activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.pos[top.index()] = usize::MAX;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(v[0]));

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn no_clauses_is_sat() {
        let mut s = Solver::new();
        let _ = lits(&mut s, 3);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn tautologies_and_duplicates_are_harmless() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], !v[0]]);
        s.add_clause(&[v[1], v[1], v[1]]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(v[1]));
    }

    #[test]
    fn chain_of_implications_propagates() {
        // x0 and (x_{i} -> x_{i+1}) for a long chain; force x0 true.
        let mut s = Solver::new();
        let v = lits(&mut s, 64);
        s.add_clause(&[v[0]]);
        for w in v.windows(2) {
            s.add_clause(&[!w[0], w[1]]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for &l in &v {
            assert!(s.value(l));
        }
        // Adding the negation of the chain's tail makes it unsat.
        s.reset_to_root();
        s.add_clause(&[!v[63]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i sits in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for a in 0..3 {
            for b in (a + 1)..3 {
                for (&la, &lb) in p[a].iter().zip(&p[b]) {
                    s.add_clause(&[!la, !lb]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_equivalence_is_unsat() {
        // Tseitin-by-hand: z1 = a^b, z2 = b^a, assert z1 != z2.
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let (a, b, z1, z2) = (v[0], v[1], v[2], v[3]);
        for (z, x, y) in [(z1, a, b), (z2, b, a)] {
            s.add_clause(&[!z, x, y]);
            s.add_clause(&[!z, !x, !y]);
            s.add_clause(&[z, !x, y]);
            s.add_clause(&[z, x, !y]);
        }
        s.add_clause(&[z1, z2]);
        s.add_clause(&[!z1, !z2]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn blocking_clause_after_sat_enumerates_models() {
        // Classic model enumeration: after a Sat answer, adding the
        // blocking clause of the model must not corrupt the instance
        // (add_clause backtracks to root before simplifying).
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        let mut models = 0;
        while s.solve() == SatResult::Sat {
            models += 1;
            assert!(models <= 3, "x|y has exactly 3 models");
            let blocking: Vec<Lit> = v.iter().map(|&l| if s.value(l) { !l } else { l }).collect();
            s.add_clause(&blocking);
        }
        assert_eq!(models, 3);
    }

    #[test]
    fn solve_limited_gives_up_and_resumes() {
        // php(5,4) needs well over one conflict; a 1-conflict budget
        // must come back undecided, and resuming must finish the proof.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..5)
            .map(|_| (0..4).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for a in 0..5 {
            for b in (a + 1)..5 {
                for (&la, &lb) in p[a].iter().zip(&p[b]) {
                    s.add_clause(&[!la, !lb]);
                }
            }
        }
        assert_eq!(s.solve_limited(Some(1)), None, "budget of 1 is too small");
        assert_eq!(s.solve_limited(None), Some(SatResult::Unsat));
    }

    #[test]
    fn stats_are_recorded() {
        let mut s = Solver::new();
        let v = lits(&mut s, 8);
        for w in v.chunks(2) {
            s.add_clause(&[w[0], w[1]]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.stats().decisions > 0);
        assert!(s.stats().propagations > 0);
    }
}
