//! Property tests for the CDCL solver: random 3-CNF instances are
//! cross-checked against a naive DPLL reference on small variable
//! counts, models are validated directly, and known-UNSAT families
//! (pigeonhole, miters of equivalent circuits) must be refuted.

use rms_logic::rng::SplitMix64;
use rms_logic::NetlistBuilder;
use rms_sat::{check_netlists, Lit, MiterOutcome, SatResult, Solver};

/// A naive DPLL decision procedure with unit propagation — slow but
/// obviously correct, used as the reference oracle.
fn dpll(clauses: &[Vec<(usize, bool)>], assign: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut unit: Option<(usize, bool)> = None;
        for clause in clauses {
            let mut satisfied = false;
            let mut unassigned: Option<(usize, bool)> = None;
            let mut count = 0;
            for &(v, neg) in clause {
                match assign[v] {
                    Some(val) => {
                        if val != neg {
                            satisfied = true;
                            break;
                        }
                    }
                    None => {
                        unassigned = Some((v, !neg));
                        count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match count {
                0 => {
                    // Conflict: undo propagation and fail.
                    for v in trail {
                        assign[v] = None;
                    }
                    return false;
                }
                1 => {
                    unit = unassigned;
                    break;
                }
                _ => {}
            }
        }
        match unit {
            Some((v, val)) => {
                assign[v] = Some(val);
                trail.push(v);
            }
            None => break,
        }
    }
    // Branch on the first unassigned variable.
    match assign.iter().position(|a| a.is_none()) {
        None => true, // no conflict, all assigned
        Some(v) => {
            for val in [false, true] {
                assign[v] = Some(val);
                if dpll(clauses, assign) {
                    return true;
                }
            }
            assign[v] = None;
            for v in trail {
                assign[v] = None;
            }
            false
        }
    }
}

/// Generates a random k-CNF instance as (num_vars, clauses).
fn random_cnf(
    rng: &mut SplitMix64,
    num_vars: usize,
    num_clauses: usize,
) -> Vec<Vec<(usize, bool)>> {
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| (rng.next_index(num_vars), rng.next_bool()))
                .collect()
        })
        .collect()
}

fn solve_cdcl(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> (SatResult, Vec<bool>) {
    let mut s = Solver::new();
    let lits: Vec<Lit> = (0..num_vars).map(|_| Lit::positive(s.new_var())).collect();
    for clause in clauses {
        let c: Vec<Lit> = clause
            .iter()
            .map(|&(v, neg)| if neg { !lits[v] } else { lits[v] })
            .collect();
        s.add_clause(&c);
    }
    let result = s.solve();
    let model = lits.iter().map(|&l| s.value(l)).collect();
    (result, model)
}

fn model_satisfies(clauses: &[Vec<(usize, bool)>], model: &[bool]) -> bool {
    clauses
        .iter()
        .all(|clause| clause.iter().any(|&(v, neg)| model[v] != neg))
}

#[test]
fn random_3cnf_agrees_with_dpll_reference() {
    let mut rng = SplitMix64::new(0x3CDF);
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for round in 0..400 {
        // Densities around the 3-SAT threshold (~4.27 clauses/var) give a
        // healthy mix of SAT and UNSAT answers.
        let n = 3 + rng.next_index(10);
        let m = n * 3 + rng.next_index(n * 3 + 1);
        let clauses = random_cnf(&mut rng, n, m);
        let (got, model) = solve_cdcl(n, &clauses);
        let mut assign = vec![None; n];
        let expect = if dpll(&clauses, &mut assign) {
            SatResult::Sat
        } else {
            SatResult::Unsat
        };
        assert_eq!(got, expect, "round {round}: n={n} m={m} {clauses:?}");
        if got == SatResult::Sat {
            sat_seen += 1;
            assert!(
                model_satisfies(&clauses, &model),
                "round {round}: bogus model {model:?} for {clauses:?}"
            );
        } else {
            unsat_seen += 1;
        }
    }
    assert!(sat_seen > 50, "want a real SAT mix, got {sat_seen}");
    assert!(unsat_seen > 50, "want a real UNSAT mix, got {unsat_seen}");
}

#[test]
fn wider_instances_agree_with_dpll_up_to_20_vars() {
    let mut rng = SplitMix64::new(0x20CDF);
    for round in 0..20 {
        let n = 15 + rng.next_index(6); // 15..=20 variables
        let m = (n * 43).div_ceil(10); // ~4.3 clauses per variable
        let clauses = random_cnf(&mut rng, n, m);
        let (got, model) = solve_cdcl(n, &clauses);
        let mut assign = vec![None; n];
        let expect = if dpll(&clauses, &mut assign) {
            SatResult::Sat
        } else {
            SatResult::Unsat
        };
        assert_eq!(got, expect, "round {round}: n={n} m={m}");
        if got == SatResult::Sat {
            assert!(model_satisfies(&clauses, &model), "round {round}");
        }
    }
}

#[test]
fn pigeonhole_instances_are_unsat() {
    for holes in 2..5usize {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for a in 0..pigeons {
            for b in (a + 1)..pigeons {
                for (&la, &lb) in p[a].iter().zip(&p[b]) {
                    s.add_clause(&[!la, !lb]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat, "php({pigeons},{holes})");
    }
}

/// Builds a random netlist two ways — once as written and once with every
/// AND/OR pair rewritten through De Morgan — and requires the miter to be
/// UNSAT (equivalent). These are exactly the UNSAT instances the
/// verification tiers depend on.
#[test]
fn miters_of_equivalent_random_circuits_are_unsat() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9) + 7);
        let n = 4 + rng.next_index(4);
        let gates = 10 + rng.next_index(20);

        let build = |demorgan: bool| {
            let mut b = NetlistBuilder::new("rand");
            let mut wires: Vec<_> = (0..n).map(|i| b.input(format!("x{i}"))).collect();
            let mut r = SplitMix64::new(seed); // same structure choices
            for _ in 0..gates {
                let a = wires[r.next_index(wires.len())];
                let c = wires[r.next_index(wires.len())];
                let a = if r.next_bool() { b.not(a) } else { a };
                let w = match r.next_index(3) {
                    0 => {
                        if demorgan {
                            let x = b.or(b.not(a), b.not(c));
                            b.not(x)
                        } else {
                            b.and(a, c)
                        }
                    }
                    1 => {
                        if demorgan {
                            let x = b.and(b.not(a), b.not(c));
                            b.not(x)
                        } else {
                            b.or(a, c)
                        }
                    }
                    _ => b.xor(a, c),
                };
                wires.push(w);
            }
            let out = *wires.last().expect("gates > 0");
            b.output("f", out);
            b.build()
        };
        let plain = build(false);
        let rewritten = build(true);
        let outcome = check_netlists(&plain, &rewritten).expect("well-formed miter");
        assert!(
            matches!(outcome, MiterOutcome::Equivalent { .. }),
            "seed {seed}: {outcome:?}"
        );
    }
}

/// Builds the (UNSAT) pigeonhole instance php(holes+1, holes) in `s` and
/// returns nothing; used by the bounded-solve test to construct identical
/// instances in independent solvers.
fn add_pigeonhole(s: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let p: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| Lit::positive(s.new_var())).collect())
        .collect();
    for row in &p {
        s.add_clause(row);
    }
    for a in 0..pigeons {
        for b in (a + 1)..pigeons {
            for (&la, &lb) in p[a].iter().zip(&p[b]) {
                s.add_clause(&[!la, !lb]);
            }
        }
    }
}

#[test]
fn bounded_solve_reports_unknown_instead_of_guessing() {
    // php(7,6) needs far more than one conflict to refute: a one-conflict
    // budget must come back `None` (unknown) — answering `Sat` would be
    // wrong outright, and answering `Unsat` would be an unsound "proof"
    // the budget never completed. An identical unbounded instance
    // establishes the true verdict.
    let mut bounded = Solver::new();
    add_pigeonhole(&mut bounded, 6);
    assert_eq!(
        bounded.solve_limited(Some(1)),
        None,
        "a 1-conflict budget cannot refute php(7,6)"
    );

    let mut unbounded = Solver::new();
    add_pigeonhole(&mut unbounded, 6);
    assert_eq!(unbounded.solve_limited(None), Some(SatResult::Unsat));
    assert!(
        unbounded.stats().conflicts > 1,
        "php(7,6) should take real search, spent {} conflicts",
        unbounded.stats().conflicts
    );
}

#[test]
fn miter_counterexamples_distinguish_the_netlists_when_replayed() {
    // Random pairs with matching interfaces are almost always
    // inequivalent; every counterexample the miter produces must, when
    // simulated on both netlists, actually make them disagree — a CEX
    // that replays clean would mean the encoder and the simulator
    // disagree about the circuit semantics.
    use rms_logic::random::random_netlist;
    let mut cexes = 0usize;
    for seed in 0..25u64 {
        let inputs = 4 + (seed % 4) as usize;
        let outputs = 1 + (seed % 2) as usize;
        let a = random_netlist("a", seed, inputs, outputs, 12);
        let b = random_netlist("b", seed + 1000, inputs, outputs, 17);
        match check_netlists(&a, &b).expect("matching interfaces") {
            MiterOutcome::Counterexample { inputs: cex } => {
                assert_eq!(cex.len(), a.num_inputs(), "seed {seed}");
                let mut m = 0u64;
                for (i, &bit) in cex.iter().enumerate() {
                    m |= (bit as u64) << i;
                }
                assert_ne!(
                    a.evaluate(m),
                    b.evaluate(m),
                    "seed {seed}: counterexample {cex:?} does not distinguish the netlists"
                );
                cexes += 1;
            }
            MiterOutcome::Equivalent { .. } => {} // rare but legitimate
        }
    }
    assert!(cexes >= 10, "only {cexes}/25 random pairs produced a CEX");
}
