//! A from-scratch reduced ordered binary decision diagram (ROBDD) package.
//!
//! This is the data structure behind the paper's first baseline
//! (Chakraborti et al. \[11\]): plain ROBDDs — hash-consed, ITE-based, no
//! complement edges (matching the cited work, where each node is realized
//! as a 2:1 multiplexer on RRAMs).
//!
//! # Example
//!
//! ```
//! use rms_bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! assert_eq!(m.node_count(&[f]), 3);
//! assert!(m.eval(f, 0b111));
//! ```

use std::collections::HashMap;

/// Reference to a BDD node. `0` and `1` are the terminal nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(pub u32);

impl BddRef {
    /// The FALSE terminal.
    pub const ZERO: BddRef = BddRef(0);
    /// The TRUE terminal.
    pub const ONE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// Terminal value, if this is a terminal.
    pub fn terminal_value(self) -> Option<bool> {
        match self.0 {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    /// Decision level (position in the variable order), not the external
    /// variable index.
    level: u32,
    lo: BddRef,
    hi: BddRef,
}

/// The BDD manager: unique table, ITE cache, and a variable order.
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    /// `order[level] = external variable index`.
    level_to_var: Vec<u32>,
    /// `var_to_level[var] = level`.
    var_to_level: Vec<u32>,
}

impl BddManager {
    /// Creates a manager for `num_vars` variables in natural order.
    pub fn new(num_vars: usize) -> Self {
        Self::with_order((0..num_vars as u32).collect())
    }

    /// Creates a manager with an explicit variable order
    /// (`order[level] = variable index`; every variable exactly once).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_order(order: Vec<u32>) -> Self {
        let n = order.len();
        let mut var_to_level = vec![u32::MAX; n];
        for (level, &v) in order.iter().enumerate() {
            assert!(
                (v as usize) < n && var_to_level[v as usize] == u32::MAX,
                "order must be a permutation"
            );
            var_to_level[v as usize] = level as u32;
        }
        BddManager {
            nodes: vec![
                // Terminal placeholders (level = sentinel beyond all vars).
                Node {
                    level: u32::MAX,
                    lo: BddRef::ZERO,
                    hi: BddRef::ZERO,
                },
                Node {
                    level: u32::MAX,
                    lo: BddRef::ONE,
                    hi: BddRef::ONE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            level_to_var: order,
            var_to_level,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.level_to_var.len()
    }

    /// The variable order (`order[level] = variable index`).
    pub fn order(&self) -> &[u32] {
        &self.level_to_var
    }

    /// The constant function `v`.
    pub fn constant(&self, v: bool) -> BddRef {
        if v {
            BddRef::ONE
        } else {
            BddRef::ZERO
        }
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var(&mut self, var: usize) -> BddRef {
        assert!(var < self.num_vars(), "variable {var} out of range");
        let level = self.var_to_level[var];
        self.mk(level, BddRef::ZERO, BddRef::ONE)
    }

    /// External variable index decided at `f`'s root.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn root_var(&self, f: BddRef) -> usize {
        assert!(!f.is_terminal(), "terminals decide no variable");
        self.level_to_var[self.nodes[f.0 as usize].level as usize] as usize
    }

    /// `(lo, hi)` cofactors of a non-terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn cofactors(&self, f: BddRef) -> (BddRef, BddRef) {
        assert!(!f.is_terminal());
        let n = self.nodes[f.0 as usize];
        (n.lo, n.hi)
    }

    fn level_of(&self, f: BddRef) -> u32 {
        self.nodes[f.0 as usize].level
    }

    fn mk(&mut self, level: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        if let Some(&r) = self.unique.get(&(level, lo, hi)) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), r);
        r
    }

    /// If-then-else `f ? g : h` — the universal operation.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::ONE {
            return g;
        }
        if f == BddRef::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::ONE && h == BddRef::ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let level = self.level_of(f).min(self.level_of(g)).min(self.level_of(h));
        let cof = |m: &Self, x: BddRef, hi: bool| -> BddRef {
            if m.level_of(x) == level {
                let n = m.nodes[x.0 as usize];
                if hi {
                    n.hi
                } else {
                    n.lo
                }
            } else {
                x
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(level, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::ZERO, BddRef::ONE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Three-input majority.
    pub fn maj(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        let gh_or = self.or(g, h);
        let gh_and = self.and(g, h);
        self.ite(f, gh_or, gh_and)
    }

    /// Evaluates `f` under the assignment packed in `minterm` (bit `i` =
    /// variable `i`).
    pub fn eval(&self, f: BddRef, minterm: u64) -> bool {
        let mut cur = f;
        while let Some(v) = match cur.terminal_value() {
            Some(b) => return b,
            None => Some(self.root_var(cur)),
        } {
            let n = self.nodes[cur.0 as usize];
            cur = if (minterm >> v) & 1 == 1 { n.hi } else { n.lo };
        }
        unreachable!()
    }

    /// Number of distinct non-terminal nodes reachable from `roots` (the
    /// BDD size reported in the literature).
    pub fn node_count(&self, roots: &[BddRef]) -> usize {
        self.reachable(roots).len()
    }

    /// All distinct non-terminal nodes reachable from `roots`.
    pub fn reachable(&self, roots: &[BddRef]) -> Vec<BddRef> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack: Vec<BddRef> = roots.to_vec();
        while let Some(r) = stack.pop() {
            if r.is_terminal() || seen[r.0 as usize] {
                continue;
            }
            seen[r.0 as usize] = true;
            out.push(r);
            let n = self.nodes[r.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        out
    }

    /// The number of variables in the support of `roots` (distinct decision
    /// variables).
    pub fn support_size(&self, roots: &[BddRef]) -> usize {
        let mut vars: Vec<usize> = self
            .reachable(roots)
            .iter()
            .map(|&r| self.root_var(r))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars.len()
    }

    /// Number of satisfying assignments of `f` over all variables.
    pub fn sat_count(&self, f: BddRef) -> u64 {
        let n = self.num_vars() as u32;
        let mut cache: HashMap<BddRef, u64> = HashMap::new();
        fn go(m: &BddManager, f: BddRef, cache: &mut HashMap<BddRef, u64>, n: u32) -> u64 {
            // Counts assignments over the variables strictly below f's level.
            if let Some(v) = f.terminal_value() {
                return if v { 1 } else { 0 };
            }
            if let Some(&c) = cache.get(&f) {
                return c;
            }
            let node = m.nodes[f.0 as usize];
            let skip = |child: BddRef, m: &BddManager| -> u32 {
                let cl = if child.is_terminal() {
                    n
                } else {
                    m.level_of(child)
                };
                cl - node.level - 1
            };
            let lo = go(m, node.lo, cache, n) << skip(node.lo, m);
            let hi = go(m, node.hi, cache, n) << skip(node.hi, m);
            let c = lo + hi;
            cache.insert(f, c);
            c
        }
        let top = if f.is_terminal() { n } else { self.level_of(f) };
        go(self, f, &mut cache, n) << top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicity() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let x = m.and(a, b);
        let na = m.not(a);
        let nb = m.not(b);
        let nor = m.or(na, nb);
        let y = m.not(nor); // a & b by De Morgan
        assert_eq!(x, y, "same function must be the same node");
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new(4);
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        for mt in 0..16u64 {
            let (av, bv, cv, dv) = (mt & 1 == 1, mt & 2 != 0, mt & 4 != 0, mt & 8 != 0);
            assert_eq!(m.eval(f, mt), (av && bv) || (cv ^ dv), "{mt}");
        }
    }

    #[test]
    fn maj_is_majority() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        for mt in 0..8u64 {
            assert_eq!(m.eval(f, mt), mt.count_ones() >= 2, "{mt}");
        }
    }

    #[test]
    fn node_count_of_parity_is_linear() {
        // Parity has 2n-1 nodes regardless of order.
        let n = 8;
        let mut m = BddManager::new(n);
        let mut f = m.var(0);
        for i in 1..n {
            let v = m.var(i);
            f = m.xor(f, v);
        }
        assert_eq!(m.node_count(&[f]), 2 * n - 1);
        assert_eq!(m.support_size(&[f]), n);
    }

    #[test]
    fn order_affects_size() {
        // f = x0&x3 | x1&x4 | x2&x5: interleaved order is exponential vs
        // paired order linear.
        let build = |order: Vec<u32>| -> usize {
            let mut m = BddManager::with_order(order);
            let mut f = m.constant(false);
            for i in 0..3usize {
                let a = m.var(i);
                let b = m.var(i + 3);
                let t = m.and(a, b);
                f = m.or(f, t);
            }
            m.node_count(&[f])
        };
        let good = build(vec![0, 3, 1, 4, 2, 5]);
        let bad = build(vec![0, 1, 2, 3, 4, 5]);
        assert!(good < bad, "good {good} !< bad {bad}");
    }

    #[test]
    fn sat_count() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        assert_eq!(m.sat_count(f), 4);
        let t = m.constant(true);
        assert_eq!(m.sat_count(t), 8);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 2);
    }

    #[test]
    fn reduction_removes_redundant_tests() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        // ite(b, a, a) must collapse to a.
        let r = m.ite(b, a, a);
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_rejected() {
        let _ = BddManager::with_order(vec![0, 0, 1]);
    }
}
