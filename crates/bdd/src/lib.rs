//! Binary decision diagrams and the BDD→RRAM synthesis baseline.
//!
//! The paper compares its MIG flow against the BDD-based RRAM synthesis of
//! Chakraborti et al. \[11\] (Table III, left half). This crate provides the
//! complete substrate for that comparison:
//!
//! - [`bdd`] — a from-scratch hash-consed ROBDD package (ITE with computed
//!   table, satisfiability counting, reachability),
//! - [`build`] — netlist→BDD conversion with static variable-ordering
//!   heuristics, and
//! - [`rram_synth`] — the mux-per-node IMP realization of \[11\], emitted as
//!   an executable [`rms_rram::Program`].
//!
//! # Example
//!
//! ```
//! use rms_bdd::{build, rram_synth};
//! use rms_logic::bench_suite;
//!
//! # fn main() {
//! let nl = bench_suite::build("rd53_f1").expect("known benchmark");
//! let circuit = build::from_netlist(&nl, build::Ordering::Natural);
//! let rram = rram_synth::synthesize(&circuit, &Default::default());
//! assert!(rram.steps() > 0);
//! # }
//! ```

//!
//! Within the workspace this crate is the other Table III baseline
//! (next to `rms-aig`); see `ARCHITECTURE.md` at the repository root
//! for how the baselines share the RRAM machine with the MIG flow.

pub mod bdd;
pub mod build;
pub mod rram_synth;

pub use bdd::{BddManager, BddRef};
pub use build::{from_netlist, BddCircuit, Ordering};
pub use rram_synth::{synthesize, BddRramCircuit, BddSynthOptions};
