//! BDD-based RRAM synthesis — the baseline of Chakraborti et al. \[11\].
//!
//! Every BDD node is a 2:1 multiplexer `v = s ? hi : lo` realized with
//! material implication. Nodes are evaluated bottom-up (terminal-adjacent
//! decision levels first); within one decision level, the crossbar can
//! drive at most [`BddSynthOptions::row_capacity`] multiplexers
//! simultaneously, so wide levels serialize into batches. Each batch takes
//! the five IMP phases below on six devices per node:
//!
//! ```text
//! ph1: NS ← s IMP 0 = s̄     NT ← t IMP 0 = t̄     TE ← e IMP 0 = ē
//! ph2: NT ← s IMP NT = !(s·t)                TE ← NS IMP TE = !(s̄·e)
//! ph3: A ← NT IMP 0 = s·t                    B ← TE IMP 0 = s̄·e
//! ph4: NA ← A IMP 0 = !A
//! ph5: B ← NA IMP B = s·t + s̄·e
//! ```
//!
//! The resulting step count is `5 · Σ_level ⌈width/row_capacity⌉` — linear
//! in the number of decision levels for thin BDDs (e.g. `parity`) and
//! super-linear for wide ones (e.g. `apex4`-class functions), matching the
//! scaling \[11\] reports. The `row_capacity` default of 24 was calibrated so
//! the emitted step counts land in the range of \[11\]'s table; the
//! ablation bench sweeps it.

use crate::bdd::BddRef;
use crate::build::BddCircuit;
use rms_rram::isa::{MicroOp, Operand, Program, RegId};
use std::collections::HashMap;

/// Options of the BDD→RRAM generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddSynthOptions {
    /// Maximum multiplexers the crossbar evaluates simultaneously.
    pub row_capacity: usize,
}

impl Default for BddSynthOptions {
    fn default() -> Self {
        BddSynthOptions { row_capacity: 24 }
    }
}

/// Result of synthesizing a BDD to an RRAM program.
#[derive(Debug, Clone)]
pub struct BddRramCircuit {
    /// The executable program.
    pub program: Program,
    /// Peak number of simultaneously live devices, including the
    /// per-batch compute scratch (six per in-flight multiplexer).
    pub devices: u64,
    /// Peak number of devices holding *values* (node results awaiting
    /// their consumers) — the array-retention footprint, which is the
    /// closest analogue of the `R` numbers \[11\] reports.
    pub value_devices: u64,
    /// Distinct BDD nodes implemented.
    pub nodes: u64,
    /// Decision levels (support size under the manager's order).
    pub levels: u64,
    /// Serialized batches over all levels.
    pub batches: u64,
}

impl BddRramCircuit {
    /// Number of sequential steps (the `S` metric of the comparison).
    pub fn steps(&self) -> u64 {
        self.program.num_steps()
    }
}

#[derive(Default)]
struct Allocator {
    next: u32,
    free: Vec<RegId>,
    live: u64,
    peak: u64,
    live_values: u64,
    peak_values: u64,
}

impl Allocator {
    fn mark_value(&mut self) {
        self.live_values += 1;
        self.peak_values = self.peak_values.max(self.live_values);
    }

    fn unmark_value(&mut self) {
        self.live_values -= 1;
    }
}

impl Allocator {
    fn alloc(&mut self) -> (RegId, bool) {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(r) = self.free.pop() {
            (r, true)
        } else {
            let r = RegId(self.next);
            self.next += 1;
            (r, false)
        }
    }

    fn alloc_fresh(&mut self) -> RegId {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        let r = RegId(self.next);
        self.next += 1;
        r
    }

    fn release(&mut self, r: RegId) {
        self.live -= 1;
        self.free.push(r);
    }
}

/// Synthesizes an RRAM program evaluating every output of `circ`.
///
/// # Panics
///
/// Panics if the circuit has no outputs.
pub fn synthesize(circ: &BddCircuit, opts: &BddSynthOptions) -> BddRramCircuit {
    assert!(!circ.roots.is_empty(), "no outputs");
    let m = &circ.manager;
    let nodes = m.reachable(&circ.roots);

    // Reference counts: how many parents/roots consume each node's value.
    let mut refs: HashMap<BddRef, u32> = HashMap::new();
    for &n in &nodes {
        let (lo, hi) = m.cofactors(n);
        for c in [lo, hi] {
            if !c.is_terminal() {
                *refs.entry(c).or_insert(0) += 1;
            }
        }
    }
    for &r in &circ.roots {
        if !r.is_terminal() {
            *refs.entry(r).or_insert(0) += 1;
        }
    }

    // Group nodes by decision level.
    let mut by_level: HashMap<u32, Vec<BddRef>> = HashMap::new();
    for &n in &nodes {
        let var = m.root_var(n) as u32;
        by_level.entry(var).or_default().push(n);
    }
    // Deterministic order inside levels.
    for v in by_level.values_mut() {
        v.sort();
    }
    // Evaluate bottom-up: deepest decision level (closest to the
    // terminals) first.
    let mut levels: Vec<u32> = by_level.keys().copied().collect();
    levels.sort_by_key(|&v| std::cmp::Reverse(m.order().iter().position(|&x| x == v)));

    let mut alloc = Allocator::default();
    let mut steps: Vec<Vec<MicroOp>> = Vec::new();
    let mut pending_clears: Vec<RegId> = Vec::new();
    let mut value_reg: HashMap<BddRef, RegId> = HashMap::new();
    let mut batches = 0u64;

    for &var in &levels {
        let level_nodes = &by_level[&var];
        for batch in level_nodes.chunks(opts.row_capacity.max(1)) {
            batches += 1;
            let mut phases: Vec<Vec<MicroOp>> = vec![Vec::new(); 5];
            let mut scratch: Vec<RegId> = Vec::new();
            let mut outs: Vec<(BddRef, RegId)> = Vec::new();
            for &node in batch {
                let (lo, hi) = m.cofactors(node);
                let operand = |x: BddRef, value_reg: &HashMap<BddRef, RegId>| -> Operand {
                    match x.terminal_value() {
                        Some(v) => Operand::Const(v),
                        None => Operand::Reg(value_reg[&x]),
                    }
                };
                let s = Operand::Input(var as usize);
                let t = operand(hi, &value_reg);
                let e = operand(lo, &value_reg);
                let take = |alloc: &mut Allocator, clears: &mut Vec<RegId>| -> RegId {
                    let (r, stale) = alloc.alloc();
                    if stale {
                        clears.push(r);
                    }
                    r
                };
                let ns = take(&mut alloc, &mut pending_clears);
                let nt = take(&mut alloc, &mut pending_clears);
                let te = take(&mut alloc, &mut pending_clears);
                let a = take(&mut alloc, &mut pending_clears);
                let na = take(&mut alloc, &mut pending_clears);
                let b = take(&mut alloc, &mut pending_clears);
                scratch.extend([ns, nt, te, a, na]);
                phases[0].extend([
                    MicroOp::Imp { p: s, q: ns },
                    MicroOp::Imp { p: t, q: nt },
                    MicroOp::Imp { p: e, q: te },
                ]);
                phases[1].extend([
                    MicroOp::Imp { p: s, q: nt },
                    MicroOp::Imp {
                        p: Operand::Reg(ns),
                        q: te,
                    },
                ]);
                phases[2].extend([
                    MicroOp::Imp {
                        p: Operand::Reg(nt),
                        q: a,
                    },
                    MicroOp::Imp {
                        p: Operand::Reg(te),
                        q: b,
                    },
                ]);
                phases[3].push(MicroOp::Imp {
                    p: Operand::Reg(a),
                    q: na,
                });
                phases[4].push(MicroOp::Imp {
                    p: Operand::Reg(na),
                    q: b,
                });
                outs.push((node, b));
            }
            // Clears of reused devices ride with the previous step.
            if let Some(prev) = steps.last_mut() {
                prev.extend(pending_clears.drain(..).map(|dst| MicroOp::False { dst }));
            } else {
                debug_assert!(pending_clears.is_empty());
            }
            steps.extend(phases);
            for r in scratch {
                alloc.release(r);
            }
            for (node, b) in outs {
                alloc.mark_value();
                value_reg.insert(node, b);
                // Consume children.
                let (lo, hi) = m.cofactors(node);
                for c in [lo, hi] {
                    if !c.is_terminal() {
                        let r = refs.get_mut(&c).expect("counted");
                        *r -= 1;
                        if *r == 0 {
                            alloc.unmark_value();
                            alloc.release(value_reg[&c]);
                        }
                    }
                }
            }
        }
    }

    // Outputs.
    let mut outputs = Vec::new();
    let mut passthrough: Vec<MicroOp> = Vec::new();
    for (name, &root) in circ.output_names.iter().zip(&circ.roots) {
        match root.terminal_value() {
            Some(v) => {
                let r = alloc.alloc_fresh();
                passthrough.push(MicroOp::Load {
                    dst: r,
                    src: Operand::Const(v),
                });
                outputs.push((name.clone(), r));
            }
            None => outputs.push((name.clone(), value_reg[&root])),
        }
    }
    if !passthrough.is_empty() {
        if let Some(first) = steps.first_mut() {
            first.extend(passthrough);
        } else {
            steps.push(passthrough);
        }
    }

    let program = Program {
        num_inputs: m.num_vars(),
        num_regs: alloc.next as usize,
        steps,
        outputs,
        model_rrams: alloc.peak,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    BddRramCircuit {
        program,
        devices: alloc.peak,
        value_devices: alloc.peak_values,
        nodes: nodes.len() as u64,
        levels: levels.len() as u64,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{from_netlist, Ordering};
    use rms_logic::bench_suite;
    use rms_rram::machine::Machine;

    fn synth(name: &str, capacity: usize) -> (BddRramCircuit, rms_logic::Netlist) {
        let nl = bench_suite::build(name).unwrap();
        let circ = from_netlist(&nl, Ordering::Natural);
        let out = synthesize(
            &circ,
            &BddSynthOptions {
                row_capacity: capacity,
            },
        );
        (out, nl)
    }

    #[test]
    fn programs_compute_the_bdd_function() {
        for name in ["rd53_f2", "exam3_d", "con1_f1", "9sym_d", "sao2_f2", "clip"] {
            let (out, nl) = synth(name, 24);
            let expect = nl.truth_tables();
            let got = Machine::truth_tables(&out.program).unwrap();
            assert_eq!(got, expect, "{name}");
        }
    }

    #[test]
    fn step_count_is_five_per_batch() {
        for name in ["rd53_f2", "9sym_d", "t481"] {
            let (out, _) = synth(name, 24);
            assert_eq!(out.steps(), 5 * out.batches, "{name}");
        }
    }

    #[test]
    fn thin_bdds_are_level_linear() {
        // Parity: one batch per decision level.
        let (out, _) = synth("rd84_f1", 24);
        assert_eq!(out.levels, 8);
        assert_eq!(out.batches, 8);
        assert_eq!(out.steps(), 40);
    }

    #[test]
    fn capacity_one_serializes_per_node() {
        let (serial, _) = synth("9sym_d", 1);
        let (parallel, _) = synth("9sym_d", 1024);
        assert_eq!(serial.batches, serial.nodes);
        assert!(parallel.batches <= parallel.levels);
        assert!(serial.steps() > parallel.steps());
        // Function unchanged either way.
        let a = Machine::truth_tables(&serial.program).unwrap();
        let b = Machine::truth_tables(&parallel.program).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_output_handled() {
        let mut b = rms_logic::NetlistBuilder::new("c");
        let x = b.input("x");
        let t = b.and(x, b.not(x)); // constant 0 through the netlist
        b.output("z", t);
        let nl = b.build();
        let circ = from_netlist(&nl, Ordering::Natural);
        let out = synthesize(&circ, &BddSynthOptions::default());
        let tts = Machine::truth_tables(&out.program).unwrap();
        assert!(tts[0].is_zero());
    }

    #[test]
    fn device_reuse_bounds_devices() {
        let (out, _) = synth("t481", 8);
        // Without reuse every node would pin 6 devices.
        assert!(
            out.devices < 6 * out.nodes,
            "devices {} vs naive {}",
            out.devices,
            6 * out.nodes
        );
    }
}
