//! Building BDDs from netlists, with static variable-ordering heuristics.

use crate::bdd::{BddManager, BddRef};
use rms_logic::netlist::{GateKind, Netlist, Wire};

/// Static variable-ordering heuristic applied before construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Inputs in declaration order.
    #[default]
    Natural,
    /// Depth-first appearance order from the outputs — the classic
    /// fanin-DFS heuristic, which keeps related inputs adjacent.
    DfsFromOutputs,
}

/// A netlist converted to BDDs: the manager plus one root per output.
#[derive(Debug, Clone)]
pub struct BddCircuit {
    /// The manager holding all nodes.
    pub manager: BddManager,
    /// One root per primary output, in netlist output order.
    pub roots: Vec<BddRef>,
    /// Output names (parallel to `roots`).
    pub output_names: Vec<String>,
}

impl BddCircuit {
    /// Total distinct nodes over all outputs.
    pub fn node_count(&self) -> usize {
        self.manager.node_count(&self.roots)
    }
}

/// Computes the fanin-DFS variable order for a netlist.
pub fn dfs_order(nl: &Netlist) -> Vec<u32> {
    let mut order: Vec<u32> = Vec::new();
    let mut seen_input = vec![false; nl.num_inputs()];
    let mut seen_node = vec![false; nl.num_nodes()];
    fn visit(
        nl: &Netlist,
        node: usize,
        seen_node: &mut [bool],
        seen_input: &mut [bool],
        order: &mut Vec<u32>,
    ) {
        if seen_node[node] {
            return;
        }
        seen_node[node] = true;
        if node == 0 {
            return;
        }
        if node <= nl.num_inputs() {
            let i = node - 1;
            if !seen_input[i] {
                seen_input[i] = true;
                order.push(i as u32);
            }
            return;
        }
        if let Some(g) = nl.gate(node) {
            for w in &g.fanins {
                visit(nl, w.node(), seen_node, seen_input, order);
            }
        }
    }
    for (_, w) in nl.outputs() {
        visit(nl, w.node(), &mut seen_node, &mut seen_input, &mut order);
    }
    // Unreferenced inputs go last.
    for (i, &seen) in seen_input.iter().enumerate() {
        if !seen {
            order.push(i as u32);
        }
    }
    order
}

/// Builds BDDs for every output of a netlist.
pub fn from_netlist(nl: &Netlist, ordering: Ordering) -> BddCircuit {
    let order = match ordering {
        Ordering::Natural => (0..nl.num_inputs() as u32).collect(),
        Ordering::DfsFromOutputs => dfs_order(nl),
    };
    let mut m = BddManager::with_order(order);
    let mut map: Vec<BddRef> = vec![BddRef::ZERO; nl.num_nodes()];
    for i in 0..nl.num_inputs() {
        map[1 + i] = m.var(i);
    }
    let rd = |m: &mut BddManager, map: &[BddRef], w: Wire| -> BddRef {
        let base = map[w.node()];
        if w.is_complemented() {
            m.not(base)
        } else {
            base
        }
    };
    for (idx, gate) in nl.gates() {
        let r = match gate.kind {
            GateKind::And => {
                let (a, b) = (
                    rd(&mut m, &map, gate.fanins[0]),
                    rd(&mut m, &map, gate.fanins[1]),
                );
                m.and(a, b)
            }
            GateKind::Or => {
                let (a, b) = (
                    rd(&mut m, &map, gate.fanins[0]),
                    rd(&mut m, &map, gate.fanins[1]),
                );
                m.or(a, b)
            }
            GateKind::Xor => {
                let (a, b) = (
                    rd(&mut m, &map, gate.fanins[0]),
                    rd(&mut m, &map, gate.fanins[1]),
                );
                m.xor(a, b)
            }
            GateKind::Maj => {
                let (a, b, c) = (
                    rd(&mut m, &map, gate.fanins[0]),
                    rd(&mut m, &map, gate.fanins[1]),
                    rd(&mut m, &map, gate.fanins[2]),
                );
                m.maj(a, b, c)
            }
            GateKind::Mux => {
                let (s, t, e) = (
                    rd(&mut m, &map, gate.fanins[0]),
                    rd(&mut m, &map, gate.fanins[1]),
                    rd(&mut m, &map, gate.fanins[2]),
                );
                m.ite(s, t, e)
            }
        };
        map[idx] = r;
    }
    let mut roots = Vec::new();
    let mut output_names = Vec::new();
    for (name, w) in nl.outputs() {
        roots.push(rd(&mut m, &map, *w));
        output_names.push(name.clone());
    }
    BddCircuit {
        manager: m,
        roots,
        output_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;

    #[test]
    fn bdd_matches_netlist_function() {
        for name in ["rd53_f2", "exam3_d", "con1_f1", "9sym_d", "sao2_f1"] {
            let nl = bench_suite::build(name).unwrap();
            let circ = from_netlist(&nl, Ordering::Natural);
            let tts = nl.truth_tables();
            for m in 0..(1u64 << nl.num_inputs()) {
                for (o, root) in circ.roots.iter().enumerate() {
                    assert_eq!(
                        circ.manager.eval(*root, m),
                        tts[o].bit(m),
                        "{name} output {o} minterm {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn dfs_order_is_a_permutation() {
        for name in ["clip", "t481", "misex1"] {
            let nl = bench_suite::build(name).unwrap();
            let mut order = dfs_order(&nl);
            order.sort_unstable();
            let expect: Vec<u32> = (0..nl.num_inputs() as u32).collect();
            assert_eq!(order, expect, "{name}");
        }
    }

    #[test]
    fn dfs_ordering_still_correct() {
        let nl = bench_suite::build("t481").unwrap();
        let circ = from_netlist(&nl, Ordering::DfsFromOutputs);
        for m in [0u64, 0xFF, 0xFF00, 0xF0F0, 0x1234] {
            let lo = (m & 0xFF).count_ones();
            let hi = ((m >> 8) & 0xFF).count_ones();
            assert_eq!(circ.manager.eval(circ.roots[0], m), lo == hi, "{m:#x}");
        }
    }

    #[test]
    fn shared_nodes_counted_once() {
        let nl = bench_suite::build("rd84_f1").unwrap(); // parity of 8
        let circ = from_netlist(&nl, Ordering::Natural);
        assert_eq!(circ.node_count(), 15, "parity-of-8 BDD has 2n-1 nodes");
    }
}
