//! A from-scratch and-inverter graph (AIG) package.
//!
//! The paper's second baseline (Bürger et al. \[12\]) synthesizes RRAM
//! circuits from AIGs: two-input AND nodes with complemented edges. This
//! module provides the data structure with structural hashing, constant
//! propagation, conversion from netlists, simulation, and a depth-reducing
//! balancing pass.
//!
//! # Example
//!
//! ```
//! use rms_aig::Aig;
//!
//! let mut aig = Aig::with_inputs("f", 2);
//! let (a, b) = (aig.input(0), aig.input(1));
//! let x = aig.xor(a, b);
//! aig.add_output("f", x);
//! assert_eq!(aig.num_gates(), 3); // XOR costs three ANDs
//! ```

use rms_logic::netlist::{GateKind, Netlist, NetlistBuilder, Wire};
use rms_logic::tt::{TruthTable, MAX_VARS};
use std::collections::HashMap;

/// An edge of the AIG: node index plus complement attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// A literal referring to `node`, complemented iff `complement`.
    pub fn new(node: usize, complement: bool) -> Self {
        AigLit(((node as u32) << 1) | complement as u32)
    }

    /// Index of the referenced node.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether the literal refers to the constant node.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    /// This literal complemented iff `c`.
    #[must_use]
    pub fn complement_if(self, c: bool) -> Self {
        AigLit(self.0 ^ c as u32)
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

/// A node of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigNode {
    /// Constant false (always node 0).
    Const0,
    /// Primary input.
    Input(u32),
    /// Two-input AND over literals (sorted).
    And([AigLit; 2]),
}

/// An and-inverter graph.
#[derive(Debug, Clone)]
pub struct Aig {
    name: String,
    num_inputs: usize,
    nodes: Vec<AigNode>,
    levels: Vec<u32>,
    outputs: Vec<(String, AigLit)>,
    strash: HashMap<[AigLit; 2], u32>,
}

impl Aig {
    /// Creates an empty graph with `num_inputs` inputs.
    pub fn with_inputs(name: impl Into<String>, num_inputs: usize) -> Self {
        let mut nodes = Vec::with_capacity(num_inputs + 1);
        nodes.push(AigNode::Const0);
        for i in 0..num_inputs {
            nodes.push(AigNode::Input(i as u32));
        }
        Aig {
            name: name.into(),
            num_inputs,
            levels: vec![0; nodes.len()],
            nodes,
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of AND nodes.
    pub fn num_gates(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no AND nodes.
    pub fn is_empty(&self) -> bool {
        self.num_gates() == 0
    }

    /// The literal of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input(&self, i: usize) -> AigLit {
        assert!(i < self.num_inputs);
        AigLit::new(1 + i, false)
    }

    /// The node at `idx`.
    pub fn node(&self, idx: usize) -> AigNode {
        self.nodes[idx]
    }

    /// Fanins of an AND node.
    pub fn and_children(&self, idx: usize) -> Option<[AigLit; 2]> {
        match self.nodes[idx] {
            AigNode::And(c) => Some(c),
            _ => None,
        }
    }

    /// Level of a node (longest path from inputs).
    pub fn level(&self, idx: usize) -> u32 {
        self.levels[idx]
    }

    /// Depth of the graph over its outputs.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|(_, l)| self.levels[l.node()])
            .max()
            .unwrap_or(0)
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[(String, AigLit)] {
        &self.outputs
    }

    /// Declares a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the literal references a nonexistent node.
    pub fn add_output(&mut self, name: impl Into<String>, lit: AigLit) {
        assert!(lit.node() < self.nodes.len());
        self.outputs.push((name.into(), lit));
    }

    /// Creates (or re-finds) an AND node, with constant propagation and
    /// trivial-case simplification.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n = self.nodes.len();
        assert!(a.node() < n && b.node() < n, "literal out of range");
        // Trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let mut kids = [a, b];
        kids.sort();
        if let Some(&idx) = self.strash.get(&kids) {
            return AigLit::new(idx as usize, false);
        }
        let idx = self.nodes.len();
        self.nodes.push(AigNode::And(kids));
        let lvl = 1 + self.levels[kids[0].node()].max(self.levels[kids[1].node()]);
        self.levels.push(lvl);
        self.strash.insert(kids, idx as u32);
        AigLit::new(idx, false)
    }

    /// Disjunction (by De Morgan).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// Exclusive or (three AND nodes).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let p = self.and(a, !b);
        let q = self.and(!a, b);
        self.or(p, q)
    }

    /// If-then-else (three AND nodes).
    pub fn mux(&mut self, s: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let p = self.and(s, t);
        let q = self.and(!s, e);
        self.or(p, q)
    }

    /// Three-input majority (five AND nodes).
    pub fn maj(&mut self, a: AigLit, b: AigLit, c: AigLit) -> AigLit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let o = self.or(ab, ac);
        self.or(o, bc)
    }

    /// Converts a gate-level netlist into an AIG.
    pub fn from_netlist(nl: &Netlist) -> Aig {
        let mut aig = Aig::with_inputs(nl.name().to_string(), nl.num_inputs());
        let mut map: Vec<AigLit> = vec![AigLit::FALSE; nl.num_nodes()];
        for i in 0..nl.num_inputs() {
            map[1 + i] = aig.input(i);
        }
        let rd = |map: &[AigLit], w: Wire| map[w.node()].complement_if(w.is_complemented());
        for (idx, gate) in nl.gates() {
            let lit = match gate.kind {
                GateKind::And => {
                    let (a, b) = (rd(&map, gate.fanins[0]), rd(&map, gate.fanins[1]));
                    aig.and(a, b)
                }
                GateKind::Or => {
                    let (a, b) = (rd(&map, gate.fanins[0]), rd(&map, gate.fanins[1]));
                    aig.or(a, b)
                }
                GateKind::Xor => {
                    let (a, b) = (rd(&map, gate.fanins[0]), rd(&map, gate.fanins[1]));
                    aig.xor(a, b)
                }
                GateKind::Maj => {
                    let (a, b, c) = (
                        rd(&map, gate.fanins[0]),
                        rd(&map, gate.fanins[1]),
                        rd(&map, gate.fanins[2]),
                    );
                    aig.maj(a, b, c)
                }
                GateKind::Mux => {
                    let (s, t, e) = (
                        rd(&map, gate.fanins[0]),
                        rd(&map, gate.fanins[1]),
                        rd(&map, gate.fanins[2]),
                    );
                    aig.mux(s, t, e)
                }
            };
            map[idx] = lit;
        }
        for (name, w) in nl.outputs() {
            let l = rd(&map, *w);
            aig.add_output(name.clone(), l);
        }
        aig
    }

    /// Converts the AIG to a netlist of AND gates (for the generic
    /// equivalence machinery).
    pub fn to_netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new(self.name.clone());
        let mut map: Vec<Wire> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let w = match node {
                AigNode::Const0 => b.const0(),
                AigNode::Input(k) => b.input(format!("x{k}")),
                AigNode::And(kids) => {
                    let f: Vec<Wire> = kids
                        .iter()
                        .map(|l| {
                            let base = map[l.node()];
                            if l.is_complemented() {
                                base.complement()
                            } else {
                                base
                            }
                        })
                        .collect();
                    b.and(f[0], f[1])
                }
            };
            map.push(w);
        }
        for (name, l) in &self.outputs {
            let base = map[l.node()];
            let w = if l.is_complemented() {
                base.complement()
            } else {
                base
            };
            b.output(name.clone(), w);
        }
        b.build()
    }

    /// Bit-parallel simulation (one word per input, one per output).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs()`.
    pub fn simulate_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs);
        let mut vals = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match node {
                AigNode::Const0 => 0,
                AigNode::Input(k) => inputs[*k as usize],
                AigNode::And(kids) => {
                    let v = |l: AigLit| {
                        let raw = vals[l.node()];
                        if l.is_complemented() {
                            !raw
                        } else {
                            raw
                        }
                    };
                    v(kids[0]) & v(kids[1])
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, l)| {
                let raw = vals[l.node()];
                if l.is_complemented() {
                    !raw
                } else {
                    raw
                }
            })
            .collect()
    }

    /// Exhaustive truth tables of every output.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`MAX_VARS`] inputs.
    pub fn truth_tables(&self) -> Vec<TruthTable> {
        let n = self.num_inputs;
        assert!(n <= MAX_VARS);
        let mut tts: Vec<TruthTable> = self.outputs.iter().map(|_| TruthTable::zero(n)).collect();
        let total = 1u64 << n;
        let mut base = 0u64;
        while base < total {
            let chunk = 64.min(total - base);
            let inputs: Vec<u64> = (0..n)
                .map(|i| {
                    let mut w = 0u64;
                    for b in 0..chunk {
                        if ((base + b) >> i) & 1 == 1 {
                            w |= 1 << b;
                        }
                    }
                    w
                })
                .collect();
            let outs = self.simulate_words(&inputs);
            for (t, &w) in tts.iter_mut().zip(&outs) {
                for b in 0..chunk {
                    if (w >> b) & 1 == 1 {
                        t.set_bit(base + b);
                    }
                }
            }
            base += chunk;
        }
        tts
    }

    /// Reference counts per node (fanins + outputs).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let AigNode::And(kids) = node {
                for k in kids {
                    refs[k.node()] += 1;
                }
            }
        }
        for (_, l) in &self.outputs {
            refs[l.node()] += 1;
        }
        refs
    }

    /// Rebuilds the graph keeping only nodes reachable from the outputs.
    pub fn compact(&self) -> Aig {
        let mut out = Aig::with_inputs(self.name.clone(), self.num_inputs);
        let mut alive = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|(_, l)| l.node()).collect();
        while let Some(i) = stack.pop() {
            if alive[i] {
                continue;
            }
            alive[i] = true;
            if let AigNode::And(kids) = self.nodes[i] {
                stack.extend(kids.iter().map(|k| k.node()));
            }
        }
        let mut map: Vec<AigLit> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let l = match node {
                AigNode::Const0 => AigLit::FALSE,
                AigNode::Input(k) => out.input(*k as usize),
                AigNode::And(kids) => {
                    if alive[i] {
                        let a = map[kids[0].node()].complement_if(kids[0].is_complemented());
                        let b = map[kids[1].node()].complement_if(kids[1].is_complemented());
                        out.and(a, b)
                    } else {
                        AigLit::FALSE
                    }
                }
            };
            map.push(l);
        }
        for (name, l) in &self.outputs {
            let m = map[l.node()].complement_if(l.is_complemented());
            out.add_output(name.clone(), m);
        }
        out
    }

    /// Depth-reducing balancing: AND trees are collected through
    /// single-fanout uncomplemented edges and rebuilt as balanced trees
    /// (shallowest operands deepest).
    pub fn balance(&self) -> Aig {
        let refs = self.fanout_counts();
        let mut out = Aig::with_inputs(self.name.clone(), self.num_inputs);
        let mut map: Vec<AigLit> = Vec::with_capacity(self.nodes.len());
        for idx in 0..self.nodes.len() {
            let lit = match self.nodes[idx] {
                AigNode::Const0 => AigLit::FALSE,
                AigNode::Input(k) => out.input(k as usize),
                AigNode::And(_) => {
                    // Collect the AND tree rooted here.
                    let mut leaves: Vec<AigLit> = Vec::new();
                    let mut stack = vec![AigLit::new(idx, false)];
                    while let Some(l) = stack.pop() {
                        let inner_tree = !l.is_complemented()
                            && matches!(self.nodes[l.node()], AigNode::And(_))
                            && (l.node() == idx || refs[l.node()] == 1);
                        if inner_tree {
                            let kids = self.and_children(l.node()).expect("and");
                            stack.push(kids[0]);
                            stack.push(kids[1]);
                        } else {
                            leaves.push(map[l.node()].complement_if(l.is_complemented()));
                        }
                    }
                    // Greedy Huffman-style balancing by level.
                    while leaves.len() > 1 {
                        leaves.sort_by_key(|l| std::cmp::Reverse(out.levels[l.node()]));
                        let a = leaves.pop().expect("two leaves");
                        let b = leaves.pop().expect("two leaves");
                        leaves.push(out.and(a, b));
                    }
                    leaves[0]
                }
            };
            map.push(lit);
        }
        for (name, l) in &self.outputs {
            let m = map[l.node()].complement_if(l.is_complemented());
            out.add_output(name.clone(), m);
        }
        out.compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;
    use rms_logic::sim::check_equivalence;

    #[test]
    fn and_simplifications() {
        let mut g = Aig::with_inputs("t", 2);
        let (a, b) = (g.input(0), g.input(1));
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.num_gates(), 0);
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y, "strashing + commutativity");
        assert_eq!(g.num_gates(), 1);
    }

    #[test]
    fn derived_operators() {
        let mut g = Aig::with_inputs("t", 3);
        let (a, b, c) = (g.input(0), g.input(1), g.input(2));
        let or = g.or(a, b);
        let xor = g.xor(a, b);
        let mux = g.mux(a, b, c);
        let maj = g.maj(a, b, c);
        g.add_output("or", or);
        g.add_output("xor", xor);
        g.add_output("mux", mux);
        g.add_output("maj", maj);
        let tts = g.truth_tables();
        for m in 0..8u64 {
            let (av, bv, cv) = (m & 1 == 1, m & 2 != 0, m & 4 != 0);
            assert_eq!(tts[0].bit(m), av || bv);
            assert_eq!(tts[1].bit(m), av ^ bv);
            assert_eq!(tts[2].bit(m), if av { bv } else { cv });
            assert_eq!(tts[3].bit(m), m.count_ones() >= 2);
        }
    }

    #[test]
    fn netlist_round_trip() {
        for name in ["rd53_f3", "exam3_d", "con2_f2", "sao2_f3"] {
            let nl = bench_suite::build(name).unwrap();
            let aig = Aig::from_netlist(&nl);
            let back = aig.to_netlist();
            let res = check_equivalence(&nl, &back);
            assert!(res.holds(), "{name}: {res:?}");
        }
    }

    #[test]
    fn balance_preserves_function_and_reduces_chains() {
        // A long AND chain balances to logarithmic depth.
        let mut g = Aig::with_inputs("chain", 8);
        let mut acc = g.input(0);
        for i in 1..8 {
            let v = g.input(i);
            acc = g.and(acc, v);
        }
        g.add_output("f", acc);
        assert_eq!(g.depth(), 7);
        let b = g.balance();
        assert_eq!(b.depth(), 3);
        let res = check_equivalence(&g.to_netlist(), &b.to_netlist());
        assert!(res.holds(), "{res:?}");
    }

    #[test]
    fn balance_on_benchmarks() {
        for name in ["9sym_d", "rd73_f2", "newtag_d"] {
            let nl = bench_suite::build(name).unwrap();
            let aig = Aig::from_netlist(&nl);
            let bal = aig.balance();
            assert!(bal.depth() <= aig.depth(), "{name}");
            let res = check_equivalence(&aig.to_netlist(), &bal.to_netlist());
            assert!(res.holds(), "{name}: {res:?}");
        }
    }

    #[test]
    fn compact_drops_dead_nodes() {
        let mut g = Aig::with_inputs("t", 2);
        let (a, b) = (g.input(0), g.input(1));
        let _dead = g.xor(a, b);
        let keep = g.and(a, b);
        g.add_output("f", keep);
        let c = g.compact();
        assert_eq!(c.num_gates(), 1);
    }
}
