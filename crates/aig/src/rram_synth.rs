//! AIG-based RRAM synthesis — the baseline of Bürger et al. \[12\].
//!
//! \[12\] maps each AIG node to a short implication sequence and executes the
//! graph node by node — there is no level parallelism, which is why its
//! step counts grow with the node count and blow up on larger functions
//! (1172 steps for `sym10_d`, 1564 for `t481_d` in the paper's Table III).
//!
//! Our generator reproduces that discipline. Per AND node with literal
//! operands `a'`, `b'` (complemented operands pay one NOT step each):
//!
//! ```text
//! [na ← a IMP 0 = ā]          only if the a-edge is complemented
//! [nb ← b IMP 0 = b̄]          only if the b-edge is complemented
//! x ← b' IMP 0 = !b'
//! x ← a' IMP x = !(a'·b')
//! v ← x IMP 0 = a'·b'
//! ```
//!
//! so a node costs 3–5 sequential steps; complemented primary outputs pay a
//! final NOT each. Device clears ride along with preceding steps exactly
//! as in the MIG compiler.

use crate::aig::{Aig, AigLit, AigNode};
use rms_rram::isa::{MicroOp, Operand, Program, RegId};
use std::collections::HashMap;

/// Result of synthesizing an AIG to an RRAM program.
#[derive(Debug, Clone)]
pub struct AigRramCircuit {
    /// The executable program.
    pub program: Program,
    /// Peak number of simultaneously live devices.
    pub devices: u64,
    /// AND nodes implemented.
    pub nodes: u64,
    /// NOT steps paid for complemented edges.
    pub inversions: u64,
}

impl AigRramCircuit {
    /// Number of sequential steps.
    pub fn steps(&self) -> u64 {
        self.program.num_steps()
    }
}

#[derive(Default)]
struct Allocator {
    next: u32,
    free: Vec<RegId>,
    live: u64,
    peak: u64,
}

impl Allocator {
    fn alloc(&mut self) -> (RegId, bool) {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(r) = self.free.pop() {
            (r, true)
        } else {
            let r = RegId(self.next);
            self.next += 1;
            (r, false)
        }
    }

    fn alloc_fresh(&mut self) -> RegId {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        let r = RegId(self.next);
        self.next += 1;
        r
    }

    fn release(&mut self, r: RegId) {
        self.live -= 1;
        self.free.push(r);
    }
}

/// Synthesizes a node-serial RRAM program for every output of `aig`.
///
/// # Panics
///
/// Panics if the graph has no outputs.
pub fn synthesize(aig: &Aig) -> AigRramCircuit {
    assert!(!aig.outputs().is_empty(), "no outputs");
    // Output cone only.
    let mut alive = vec![false; aig.len()];
    let mut stack: Vec<usize> = aig.outputs().iter().map(|(_, l)| l.node()).collect();
    while let Some(i) = stack.pop() {
        if alive[i] {
            continue;
        }
        alive[i] = true;
        if let AigNode::And(kids) = aig.node(i) {
            stack.extend(kids.iter().map(|k| k.node()));
        }
    }
    let mut consumers = vec![0u32; aig.len()];
    for (idx, &is_alive) in alive.iter().enumerate() {
        if !is_alive {
            continue;
        }
        if let AigNode::And(kids) = aig.node(idx) {
            for k in kids {
                consumers[k.node()] += 1;
            }
        }
    }
    for (_, l) in aig.outputs() {
        consumers[l.node()] += 1;
    }

    let mut alloc = Allocator::default();
    let mut steps: Vec<Vec<MicroOp>> = Vec::new();
    let mut pending_clears: Vec<RegId> = Vec::new();
    let mut value_reg: HashMap<usize, RegId> = HashMap::new();
    let mut inversions = 0u64;

    let take =
        |alloc: &mut Allocator, steps: &mut Vec<Vec<MicroOp>>, clears: &mut Vec<RegId>| -> RegId {
            let (r, stale) = alloc.alloc();
            if stale {
                if let Some(prev) = steps.last_mut() {
                    prev.push(MicroOp::False { dst: r });
                } else {
                    clears.push(r);
                }
            }
            r
        };

    for (idx, &is_alive) in alive.iter().enumerate() {
        if !is_alive {
            continue;
        }
        let AigNode::And(kids) = aig.node(idx) else {
            continue;
        };
        // Resolve literal operands; complemented non-constant edges pay a
        // serial NOT step into a scratch device.
        let mut scratch: Vec<RegId> = Vec::new();
        let mut resolve = |lit: AigLit,
                           alloc: &mut Allocator,
                           steps: &mut Vec<Vec<MicroOp>>,
                           scratch: &mut Vec<RegId>,
                           inversions: &mut u64|
         -> Operand {
            if lit.is_constant() {
                return Operand::Const(lit.is_complemented());
            }
            let base = match aig.node(lit.node()) {
                AigNode::Input(k) => Operand::Input(k as usize),
                _ => Operand::Reg(value_reg[&lit.node()]),
            };
            if !lit.is_complemented() {
                return base;
            }
            let r = take(alloc, steps, &mut pending_clears);
            steps.push(vec![MicroOp::Imp { p: base, q: r }]);
            *inversions += 1;
            scratch.push(r);
            Operand::Reg(r)
        };
        let a = resolve(
            kids[0],
            &mut alloc,
            &mut steps,
            &mut scratch,
            &mut inversions,
        );
        let b = resolve(
            kids[1],
            &mut alloc,
            &mut steps,
            &mut scratch,
            &mut inversions,
        );
        let x = take(&mut alloc, &mut steps, &mut pending_clears);
        let v = take(&mut alloc, &mut steps, &mut pending_clears);
        steps.push(vec![MicroOp::Imp { p: b, q: x }]);
        steps.push(vec![MicroOp::Imp { p: a, q: x }]);
        steps.push(vec![MicroOp::Imp {
            p: Operand::Reg(x),
            q: v,
        }]);
        scratch.push(x);
        for r in scratch {
            alloc.release(r);
        }
        value_reg.insert(idx, v);
        for kid in kids {
            let n = kid.node();
            if n != 0 && !matches!(aig.node(n), AigNode::Input(_)) {
                consumers[n] -= 1;
                if consumers[n] == 0 {
                    alloc.release(value_reg[&n]);
                }
            }
        }
    }

    // Outputs: complemented or pass-through outputs need extra handling.
    let mut outputs = Vec::new();
    let mut passthrough: Vec<MicroOp> = Vec::new();
    for (name, lit) in aig.outputs() {
        let n = lit.node();
        let is_gate = matches!(aig.node(n), AigNode::And(_));
        if is_gate && !lit.is_complemented() {
            outputs.push((name.clone(), value_reg[&n]));
        } else if is_gate {
            // Final NOT (serial, as everything in this flow).
            let r = take(&mut alloc, &mut steps, &mut pending_clears);
            steps.push(vec![MicroOp::Imp {
                p: Operand::Reg(value_reg[&n]),
                q: r,
            }]);
            inversions += 1;
            outputs.push((name.clone(), r));
        } else {
            // Constant or input output.
            let src = if lit.is_constant() {
                Operand::Const(lit.is_complemented())
            } else {
                let k = match aig.node(n) {
                    AigNode::Input(k) => k as usize,
                    _ => unreachable!(),
                };
                Operand::Input(k)
            };
            let r = alloc.alloc_fresh();
            if lit.is_complemented() && !lit.is_constant() {
                steps.push(vec![MicroOp::Imp { p: src, q: r }]);
                inversions += 1;
            } else {
                passthrough.push(MicroOp::Load { dst: r, src });
            }
            outputs.push((name.clone(), r));
        }
    }
    if !passthrough.is_empty() {
        if let Some(first) = steps.first_mut() {
            first.extend(passthrough);
        } else {
            steps.push(passthrough);
        }
    }

    let program = Program {
        num_inputs: aig.num_inputs(),
        num_regs: alloc.next as usize,
        steps,
        outputs,
        model_rrams: alloc.peak,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    AigRramCircuit {
        program,
        devices: alloc.peak,
        nodes: value_reg.len() as u64,
        inversions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_logic::bench_suite;
    use rms_rram::machine::Machine;

    #[test]
    fn programs_compute_the_aig_function() {
        for name in ["rd53_f1", "exam3_d", "con1_f1", "9sym_d", "sao2_f2"] {
            let nl = bench_suite::build(name).unwrap();
            let aig = Aig::from_netlist(&nl);
            let out = synthesize(&aig);
            let got = Machine::truth_tables(&out.program).unwrap();
            assert_eq!(got, nl.truth_tables(), "{name}");
        }
    }

    #[test]
    fn node_serial_step_count() {
        // Every node costs exactly 3 steps plus 1 per complemented edge to
        // a non-constant literal, plus output fixups.
        let nl = bench_suite::build("exam3_d").unwrap();
        let aig = Aig::from_netlist(&nl).compact();
        let out = synthesize(&aig);
        assert_eq!(
            out.steps(),
            3 * out.nodes + out.inversions,
            "steps must decompose into node and inversion costs"
        );
    }

    #[test]
    fn serial_execution_is_much_slower_than_level_parallel_mig() {
        // The headline contrast of Table III (right): AIG steps scale with
        // node count.
        let nl = bench_suite::build("9sym_d").unwrap();
        let aig = Aig::from_netlist(&nl).compact();
        let out = synthesize(&aig);
        assert!(
            out.steps() >= 3 * aig.num_gates() as u64,
            "{} steps for {} nodes",
            out.steps(),
            aig.num_gates()
        );
    }

    #[test]
    fn single_and_gate() {
        let mut g = Aig::with_inputs("and", 2);
        let (a, b) = (g.input(0), g.input(1));
        let v = g.and(a, b);
        g.add_output("f", v);
        let out = synthesize(&g);
        assert_eq!(out.steps(), 3);
        let tts = Machine::truth_tables(&out.program).unwrap();
        assert_eq!(tts[0].words()[0] & 0xF, 0b1000);
    }

    #[test]
    fn complemented_output_pays_a_not() {
        let mut g = Aig::with_inputs("nand", 2);
        let (a, b) = (g.input(0), g.input(1));
        let v = g.and(a, b);
        g.add_output("f", !v);
        let out = synthesize(&g);
        assert_eq!(out.steps(), 4);
        let tts = Machine::truth_tables(&out.program).unwrap();
        assert_eq!(tts[0].words()[0] & 0xF, 0b0111);
    }

    #[test]
    fn input_passthrough_and_constants() {
        let mut g = Aig::with_inputs("pt", 2);
        let (a, b) = (g.input(0), g.input(1));
        let v = g.and(a, b);
        g.add_output("g", v);
        g.add_output("x", a);
        g.add_output("nx", !b);
        g.add_output("one", AigLit::TRUE);
        let out = synthesize(&g);
        let tts = Machine::truth_tables(&out.program).unwrap();
        for m in 0..4u64 {
            let (av, bv) = (m & 1 == 1, m & 2 != 0);
            assert_eq!(tts[0].bit(m), av && bv);
            assert_eq!(tts[1].bit(m), av);
            assert_eq!(tts[2].bit(m), !bv);
            assert!(tts[3].bit(m));
        }
    }
}
