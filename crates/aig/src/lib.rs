//! And-inverter graphs and the AIG→RRAM synthesis baseline.
//!
//! The paper compares its MIG flow against the AIG-based RRAM synthesis of
//! Bürger et al. \[12\] (Table III, right half). This crate provides:
//!
//! - [`aig`] — a from-scratch AIG package (structural hashing, constant
//!   propagation, depth-reducing balancing), and
//! - [`rram_synth`] — the node-serial implication realization of \[12\],
//!   emitted as an executable [`rms_rram::Program`].
//!
//! # Example
//!
//! ```
//! use rms_aig::{Aig, rram_synth};
//! use rms_logic::bench_suite;
//!
//! # fn main() {
//! let nl = bench_suite::build("exam1_d").expect("known benchmark");
//! let aig = Aig::from_netlist(&nl).compact();
//! let circuit = rram_synth::synthesize(&aig);
//! assert!(circuit.steps() >= 3 * aig.num_gates() as u64);
//! # }
//! ```

//!
//! Within the workspace this crate is both a Table III baseline and an
//! optional pipeline frontend (`rms_flow::Frontend::Aig`); see
//! `ARCHITECTURE.md` at the repository root.

pub mod aig;
pub mod rram_synth;

pub use aig::{Aig, AigLit, AigNode};
pub use rram_synth::{synthesize, AigRramCircuit};
