//! Full flow from a BLIF description — the adoption path for users who
//! have the original ISCAS89/LGsynth91 files: parse, synthesize with all
//! three data structures (MIG / BDD / AIG), and compare the RRAM circuits.
//!
//! Run with `cargo run --release --example blif_flow [path/to/file.blif]`.
//! Without an argument, a bundled sample circuit is used.

use rram_mig::aig::Aig;
use rram_mig::bdd::{build as bdd_build, rram_synth as bdd_rram};
use rram_mig::logic::blif;
use rram_mig::mig::cost::{Realization, RramCost};
use rram_mig::mig::opt::{self, OptOptions};
use rram_mig::mig::Mig;

const SAMPLE: &str = "\
.model sample
.inputs a b c d e
.outputs f g
.names a b p1
11 1
.names c d p2
10 1
01 1
.names p1 p2 e f
11- 1
--1 1
.names a d e g
000 1
111 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_string(),
    };
    let netlist = blif::parse(&source)?;
    println!(
        "parsed {:?}: {} inputs, {} outputs, {} gates, depth {}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_outputs(),
        netlist.num_gates(),
        netlist.depth()
    );

    // MIG flow (the paper's proposal).
    let mig = Mig::from_netlist(&netlist);
    let opts = OptOptions::paper();
    let optimized = opt::optimize_rram(&mig, Realization::Maj, &opts);
    let mig_cost = RramCost::of(&optimized, Realization::Maj);
    println!(
        "MIG  multi-objective (MAJ): R={} S={}",
        mig_cost.rrams, mig_cost.steps
    );
    let imp_cost = RramCost::of(
        &opt::optimize_rram(&mig, Realization::Imp, &opts),
        Realization::Imp,
    );
    println!(
        "MIG  multi-objective (IMP): R={} S={}",
        imp_cost.rrams, imp_cost.steps
    );

    // BDD baseline [11].
    let circ = bdd_build::from_netlist(&netlist, bdd_build::Ordering::DfsFromOutputs);
    let bdd = bdd_rram::synthesize(&circ, &Default::default());
    println!(
        "BDD  baseline [11]:         R={} S={} ({} nodes)",
        bdd.value_devices,
        bdd.steps(),
        bdd.nodes
    );

    // AIG baseline [12].
    let aig = Aig::from_netlist(&netlist).balance();
    let aig_rram = rram_mig::aig::rram_synth::synthesize(&aig);
    println!(
        "AIG  baseline [12]:         S={} ({} nodes, node-serial)",
        aig_rram.steps(),
        aig_rram.nodes
    );

    // Round-trip: write the netlist back out as BLIF.
    let round = blif::write(&netlist);
    let back = blif::parse(&round)?;
    let equiv = rram_mig::logic::sim::check_equivalence(&netlist, &back);
    println!("BLIF round-trip equivalence: {equiv:?}");
    Ok(())
}
