//! In-memory arithmetic: synthesize an n-bit ripple-carry adder to RRAMs
//! and compare the IMP-based and MAJ-based realizations across all four
//! optimization algorithms — the kind of datapath workload the paper's
//! introduction motivates for processing-in-memory.
//!
//! Run with `cargo run --release --example adder_inmemory`.

use rram_mig::logic::netlist::{Netlist, NetlistBuilder};
use rram_mig::mig::cost::{Realization, RramCost};
use rram_mig::mig::opt::{Algorithm, OptOptions};
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;
use rram_mig::rram::machine::Machine;

fn adder(bits: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("adder{bits}"));
    let xs: Vec<_> = (0..bits).map(|i| b.input(format!("a{i}"))).collect();
    let ys: Vec<_> = (0..bits).map(|i| b.input(format!("b{i}"))).collect();
    let mut carry = b.const0();
    for i in 0..bits {
        let t = b.xor(xs[i], ys[i]);
        let sum = b.xor(t, carry);
        let next = b.maj(xs[i], ys[i], carry);
        b.output(format!("s{i}"), sum);
        carry = next;
    }
    b.output("cout", carry);
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const BITS: usize = 6;
    let netlist = adder(BITS);
    let mig = Mig::from_netlist(&netlist);
    let opts = OptOptions::paper();

    println!(
        "{BITS}-bit ripple-carry adder: {} gates, depth {}",
        netlist.num_gates(),
        netlist.depth()
    );
    println!(
        "initial MIG: {} nodes, depth {}\n",
        mig.num_gates(),
        mig.depth()
    );

    println!(
        "{:<12} {:>14} {:>14}",
        "algorithm", "IMP (R/S)", "MAJ (R/S)"
    );
    for alg in Algorithm::ALL {
        let imp = alg.run(&mig, Realization::Imp, &opts);
        let maj = alg.run(&mig, Realization::Maj, &opts);
        let ci = RramCost::of(&imp, Realization::Imp);
        let cm = RramCost::of(&maj, Realization::Maj);
        println!(
            "{:<12} {:>14} {:>14}",
            alg.to_string(),
            format!("{}/{}", ci.rrams, ci.steps),
            format!("{}/{}", cm.rrams, cm.steps)
        );
    }

    // Execute the step-optimized MAJ circuit on real additions.
    let best = Algorithm::Steps.run(&mig, Realization::Maj, &opts);
    let circuit = compile(&best, Realization::Maj);
    println!(
        "\nexecuting the step-optimized MAJ circuit ({} steps, {} devices):",
        circuit.program.num_steps(),
        circuit.program.num_regs
    );
    for (a, b) in [(11u64, 25u64), (63, 1), (42, 21), (0, 0)] {
        let mut bits = Vec::new();
        for i in 0..BITS {
            bits.push((a >> i) & 1 == 1);
        }
        for i in 0..BITS {
            bits.push((b >> i) & 1 == 1);
        }
        let outs = Machine::run_bools(&circuit.program, &bits)?;
        let sum: u64 = outs.iter().enumerate().map(|(i, &v)| (v as u64) << i).sum();
        assert_eq!(sum, a + b, "in-memory addition must be exact");
        println!("  {a:2} + {b:2} = {sum}");
    }
    println!("all additions verified against the machine");
    Ok(())
}
