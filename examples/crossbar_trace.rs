//! Step-by-step trace of the paper's two majority-gate realizations
//! (Fig. 3 and Sec. III-A2) on the RRAM machine, reproducing the
//! intermediate values the paper derives.
//!
//! Run with `cargo run --release --example crossbar_trace`.

use rram_mig::rram::gates::{imp_majority_gate, maj_majority_gate};
use rram_mig::rram::isa::{Program, RegId};
use rram_mig::rram::machine::Machine;

/// Runs `program` truncated after each step and prints every device state.
fn trace(program: &Program, names: &[&str], inputs: &[bool]) {
    println!(
        "inputs: {}",
        inputs
            .iter()
            .enumerate()
            .map(|(i, &b)| format!("x{}={}", i, b as u8))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("step | op(s){:32}| {}", "", names.join(" "));
    for cut in 1..=program.steps.len() {
        let mut probe = program.clone();
        probe.steps.truncate(cut);
        probe.outputs = (0..probe.num_regs)
            .map(|r| (format!("r{r}"), RegId(r as u32)))
            .collect();
        let states = Machine::run_bools(&probe, inputs).expect("valid program");
        let ops: Vec<String> = program.steps[cut - 1]
            .iter()
            .map(|o| o.to_string())
            .collect();
        let vals: Vec<String> = states.iter().map(|&v| format!("{}", v as u8)).collect();
        println!("{cut:4} | {:<37}| {}", ops.join("; "), vals.join(" "));
    }
}

fn main() {
    let inputs = [true, false, true]; // x=1, y=0, z=1 -> majority 1

    println!("== Fig. 3: IMP-based majority gate, 6 RRAMs, 10 steps ==");
    trace(
        &imp_majority_gate(),
        &["X", "Y", "Z", "A", "B", "C"],
        &inputs,
    );
    println!("output device A holds maj(1,0,1) = 1\n");

    println!("== Sec. III-A2: MAJ-based majority gate, 4 RRAMs, 3 steps ==");
    trace(&maj_majority_gate(), &["X", "Y", "Z", "A"], &inputs);
    println!("output device Z holds maj(1,0,1) = 1");
}
