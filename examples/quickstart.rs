//! Quickstart: expression → MIG → optimization → RRAM program → execution.
//!
//! Run with `cargo run --release --example quickstart`.

use rram_mig::logic::expr::Expr;
use rram_mig::logic::netlist::NetlistBuilder;
use rram_mig::mig::cost::{Realization, RramCost};
use rram_mig::mig::opt::{self, OptOptions};
use rram_mig::mig::Mig;
use rram_mig::rram::compile::compile;
use rram_mig::rram::machine::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a Boolean function.
    let expr = Expr::parse("maj(a, b, c) ^ (d & !a) | mux(c, a, d)")?;
    println!("function: {expr}");

    // 2. Lower it to a netlist (expressions, BLIF and PLA all work).
    let mut builder = NetlistBuilder::new("quickstart");
    let inputs: Vec<_> = expr
        .variables()
        .iter()
        .map(|name| builder.input(name.clone()))
        .collect();
    // Evaluate the expression per minterm into a truth-table netlist via
    // the expression's own lowering (small function, so this is exact).
    let tt = expr.to_truth_table()?;
    // A simple sum-of-minterms netlist; the optimizer will restructure it.
    let mut acc = builder.const0();
    for m in 0..tt.num_bits() {
        if !tt.bit(m) {
            continue;
        }
        let mut term = builder.const1();
        for (i, &w) in inputs.iter().enumerate() {
            let lit = if (m >> i) & 1 == 1 { w } else { w.complement() };
            term = builder.and(term, lit);
        }
        acc = builder.or(acc, term);
    }
    builder.output("f", acc);
    let netlist = builder.build();

    // 3. Convert to a majority-inverter graph and optimize for steps.
    let mig = Mig::from_netlist(&netlist);
    let opts = OptOptions::paper();
    let optimized = opt::optimize_steps(&mig, Realization::Maj, &opts);
    println!(
        "MIG: {} -> {} majority nodes, depth {} -> {}",
        mig.num_gates(),
        optimized.num_gates(),
        mig.depth(),
        optimized.depth()
    );
    println!(
        "cost before: {}   after: {}",
        RramCost::of(&mig, Realization::Maj),
        RramCost::of(&optimized, Realization::Maj)
    );

    // 4. Compile to an RRAM program and execute it on the machine.
    let circuit = compile(&optimized, Realization::Maj);
    println!(
        "compiled: {} steps on {} devices (Table I model: R = {})",
        circuit.program.num_steps(),
        circuit.program.num_regs,
        circuit.model_rrams
    );
    for minterm in [0b0000u64, 0b0111, 0b1010, 0b1111] {
        let bits: Vec<bool> = (0..4).map(|i| (minterm >> i) & 1 == 1).collect();
        let outs = Machine::run_bools(&circuit.program, &bits)?;
        let expect = tt.bit(minterm);
        assert_eq!(outs[0], expect, "machine must agree with the function");
        println!("f({minterm:04b}) = {}", outs[0] as u8);
    }
    println!("machine agrees with the specification on all probed inputs");
    Ok(())
}
